//! Correctness properties of scoped queries (`Scope` + partition
//! sketches), across all six adaptive loops:
//!
//! * a scope covering every row is *bitwise identical* to the unscoped
//!   query — scoping must never perturb existing answers;
//! * at full sample (`m = n_s`) a range scope reproduces the exact
//!   brute-force statistic over the scoped rows, whether the range is
//!   page-aligned or straddles 65 536-row page boundaries — the hybrid
//!   sketch-seeded path and the physical fringe path must agree with a
//!   plain scan;
//! * an empty range is well-defined (zero scores, zero rows sampled),
//!   not an error or a panic;
//! * scoped answers are invariant to thread count (1 vs 8) and to the
//!   width columns are packed at (`u8`/`u16`/`u32`).

use swope_columnar::{Column, Dataset, DatasetSketch, Field, Schema, Width, PAGE_ROWS};
use swope_core::{
    entropy_filter, entropy_filter_scoped, entropy_profile, entropy_profile_scoped, entropy_top_k,
    entropy_top_k_scoped, mi_filter, mi_filter_scoped, mi_profile, mi_profile_scoped, mi_top_k,
    mi_top_k_scoped, Scope, SwopeConfig,
};
use swope_estimate::entropy::entropy_from_counts;
use swope_estimate::joint::mutual_information_over_rows;
use swope_sampling::rng::Xoshiro256pp;

const TARGET: usize = 5;

/// Mixed supports and skews over `pages` full sketch pages plus a
/// ragged tail, so scopes can be aligned, unaligned, and tail-covering.
fn dataset(seed: u64, n: usize) -> Dataset {
    let mut r = Xoshiro256pp::seed_from_u64(seed);
    let mut fields = Vec::new();
    let mut columns = Vec::new();
    for (i, &support) in [2u32, 3, 8, 40, 200, 16].iter().enumerate() {
        let skew = i % 2 == 0;
        let codes: Vec<u32> = (0..n)
            .map(|_| {
                let c = r.next_below(support as u64) as u32;
                if skew && r.next_below(4) != 0 {
                    0
                } else {
                    c
                }
            })
            .collect();
        fields.push(Field::new(format!("a{i}"), support));
        columns.push(Column::new(codes, support).unwrap());
    }
    Dataset::new(Schema::new(fields), columns).unwrap()
}

fn sketch_of(ds: &Dataset) -> DatasetSketch {
    DatasetSketch::build(ds.num_rows(), (0..ds.num_attrs()).map(|a| ds.column(a).packed()))
}

fn config(seed: u64, epsilon: f64, threads: usize) -> SwopeConfig {
    SwopeConfig::with_epsilon(epsilon).with_seed(seed).with_threads(threads)
}

/// Exact entropy of `attr` over `range` by a plain scan.
fn brute_entropy(ds: &Dataset, attr: usize, range: std::ops::Range<usize>) -> f64 {
    let col = ds.column(attr);
    let mut counts = vec![0u64; col.support() as usize];
    for r in range {
        counts[col.code(r) as usize] += 1;
    }
    entropy_from_counts(&counts)
}

#[test]
fn full_range_scope_is_bitwise_identical_across_all_six_loops() {
    let ds = dataset(31, 2 * PAGE_ROWS + 1234);
    let sk = sketch_of(&ds);
    let n = ds.num_rows();
    // Both spellings of "everything": the explicit 0..n range and the
    // unrestricted default scope.
    for scope in [Scope::range(0, n), Scope::all()] {
        let cfg = config(31, 0.15, 1);
        assert_eq!(
            entropy_top_k_scoped(&ds, 3, &scope, Some(&sk), &cfg).unwrap(),
            entropy_top_k(&ds, 3, &cfg).unwrap()
        );
        assert_eq!(
            entropy_filter_scoped(&ds, 1.0, &scope, Some(&sk), &cfg).unwrap(),
            entropy_filter(&ds, 1.0, &cfg).unwrap()
        );
        assert_eq!(
            entropy_profile_scoped(&ds, 0.05, &scope, Some(&sk), &cfg).unwrap(),
            entropy_profile(&ds, 0.05, &cfg).unwrap()
        );
        let cfg = config(31, 0.5, 1);
        assert_eq!(
            mi_top_k_scoped(&ds, TARGET, 3, &scope, Some(&sk), &cfg).unwrap(),
            mi_top_k(&ds, TARGET, 3, &cfg).unwrap()
        );
        assert_eq!(
            mi_filter_scoped(&ds, TARGET, 0.1, &scope, Some(&sk), &cfg).unwrap(),
            mi_filter(&ds, TARGET, 0.1, &cfg).unwrap()
        );
        assert_eq!(
            mi_profile_scoped(&ds, TARGET, 0.05, &scope, Some(&sk), &cfg).unwrap(),
            mi_profile(&ds, TARGET, 0.05, &cfg).unwrap()
        );
    }
}

#[test]
fn range_scopes_at_page_boundaries_match_brute_force_at_full_sample() {
    let ds = dataset(32, 3 * PAGE_ROWS + 777);
    let sk = sketch_of(&ds);
    // A tiny epsilon drives the adaptive loops to m = n_s, where the
    // estimate must be *exact* over the scoped rows. The ranges cover
    // the interesting alignments: page-aligned on both ends, straddling
    // boundaries on either side, within one page, and into the ragged
    // tail page.
    let ranges = [
        PAGE_ROWS..2 * PAGE_ROWS,               // aligned both ends
        PAGE_ROWS - 1..2 * PAGE_ROWS + 1,       // unaligned both ends
        0..PAGE_ROWS + 1,                       // aligned start only
        PAGE_ROWS + 9..PAGE_ROWS + 5000,        // inside one page
        2 * PAGE_ROWS + 5..3 * PAGE_ROWS + 700, // ends in the tail
    ];
    let cfg = config(32, 0.0005, 1);
    for range in ranges {
        let scope = Scope::range(range.start, range.end);
        let n_s = range.len();
        let prof = entropy_profile_scoped(&ds, 0.0, &scope, Some(&sk), &cfg).unwrap();
        assert_eq!(prof.stats.sample_size, n_s, "{range:?} should sample to exhaustion");
        for s in &prof.scores {
            let exact = brute_entropy(&ds, s.attr, range.clone());
            assert!(
                (s.estimate - exact).abs() < 1e-9,
                "attr {} over {range:?}: estimate {} vs exact {exact}",
                s.attr,
                s.estimate
            );
        }
        let prof = mi_profile_scoped(&ds, TARGET, 0.0, &scope, Some(&sk), &cfg).unwrap();
        let rows: Vec<u32> = (range.start as u32..range.end as u32).collect();
        for s in &prof.scores {
            let exact = mutual_information_over_rows(ds.column(TARGET), ds.column(s.attr), &rows);
            assert!(
                (s.estimate - exact).abs() < 1e-9,
                "MI attr {} over {range:?}: estimate {} vs exact {exact}",
                s.attr,
                s.estimate
            );
        }
    }
}

#[test]
fn empty_ranges_are_well_defined_across_all_six_loops() {
    let ds = dataset(33, PAGE_ROWS + 100);
    let sk = sketch_of(&ds);
    let cfg = config(33, 0.1, 1);
    for scope in [Scope::range(500, 500), Scope::range(PAGE_ROWS + 100, usize::MAX)] {
        let r = entropy_top_k_scoped(&ds, 3, &scope, Some(&sk), &cfg).unwrap();
        assert_eq!(r.stats.sample_size, 0);
        assert_eq!(r.top.len(), 3);
        assert!(r.top.iter().all(|s| s.estimate == 0.0 && s.lower == 0.0 && s.upper == 0.0));
        let r = entropy_filter_scoped(&ds, 1.0, &scope, Some(&sk), &cfg).unwrap();
        assert!(r.accepted.is_empty());
        let r = entropy_filter_scoped(&ds, 0.0, &scope, Some(&sk), &cfg).unwrap();
        assert_eq!(r.accepted.len(), ds.num_attrs(), "eta = 0 accepts everything vacuously");
        let r = entropy_profile_scoped(&ds, 0.05, &scope, Some(&sk), &cfg).unwrap();
        assert!(r.scores.iter().all(|s| s.estimate == 0.0));
        let r = mi_top_k_scoped(&ds, TARGET, 2, &scope, Some(&sk), &cfg).unwrap();
        assert_eq!(r.top.len(), 2);
        assert!(r.top.iter().all(|s| s.estimate == 0.0));
        let r = mi_filter_scoped(&ds, TARGET, 0.1, &scope, Some(&sk), &cfg).unwrap();
        assert!(r.accepted.is_empty());
        let r = mi_profile_scoped(&ds, TARGET, 0.05, &scope, Some(&sk), &cfg).unwrap();
        assert!(r.scores.iter().all(|s| s.estimate == 0.0));
    }
}

/// The same logical dataset with every column forced to `width`.
fn repacked(ds: &Dataset, width: Width) -> Dataset {
    let columns = (0..ds.num_attrs())
        .map(|a| ds.column(a).with_width(width).expect("supports fit every width"))
        .collect();
    Dataset::new(ds.schema().clone(), columns).unwrap()
}

#[test]
fn scoped_answers_are_thread_and_width_invariant() {
    let ds = dataset(34, 2 * PAGE_ROWS + 4321);
    // An unaligned range (hybrid path) and a predicate (row-list path).
    let scopes = [
        Scope::range(PAGE_ROWS - 250, 2 * PAGE_ROWS + 250),
        Scope::range(0, ds.num_rows()).with_predicate(0, 0),
    ];
    for scope in &scopes {
        let baseline_sk = sketch_of(&ds);
        let baseline =
            entropy_top_k_scoped(&ds, 3, scope, Some(&baseline_sk), &config(34, 0.15, 1)).unwrap();
        let mi_baseline =
            mi_top_k_scoped(&ds, TARGET, 3, scope, Some(&baseline_sk), &config(34, 0.5, 1))
                .unwrap();
        for width in [Width::U8, Width::U16, Width::U32] {
            let packed = repacked(&ds, width);
            let sk = sketch_of(&packed);
            for threads in [1, 8] {
                assert_eq!(
                    entropy_top_k_scoped(&packed, 3, scope, Some(&sk), &config(34, 0.15, threads))
                        .unwrap(),
                    baseline,
                    "entropy: width = {width}, threads = {threads}"
                );
                assert_eq!(
                    mi_top_k_scoped(
                        &packed,
                        TARGET,
                        3,
                        scope,
                        Some(&sk),
                        &config(34, 0.5, threads)
                    )
                    .unwrap(),
                    mi_baseline,
                    "mi: width = {width}, threads = {threads}"
                );
            }
        }
    }
}
