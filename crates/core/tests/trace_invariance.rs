//! Determinism property: tracing must be purely observational.
//!
//! Every adaptive loop must return bitwise-identical results with a
//! `TraceObserver` attached (and a trace-bound executor recording
//! `exec_dispatch` spans) versus the plain `NoopObserver` run — across
//! exec parallelism 1 and 8. This is the acceptance gate for the tracing
//! layer: the `NoopObserver` monomorphization is untouched (the loops
//! did not change), and the traced path only *reads* clocks and records
//! spans from serial sections, so answers cannot move.
//!
//! Mirrors `thread_invariance.rs` (same staggered-retirement dataset).

use std::sync::Arc;

use swope_columnar::{Column, Dataset, Field, Schema};
use swope_core::exec::Executor;
use swope_core::{
    entropy_filter, entropy_filter_exec, entropy_profile, entropy_profile_exec, entropy_top_k,
    entropy_top_k_exec, mi_filter, mi_filter_exec, mi_profile, mi_profile_exec, mi_top_k,
    mi_top_k_exec, SwopeConfig,
};
use swope_obs::trace::{SpanSink, TraceId, TraceObserver};
use swope_sampling::rng::Xoshiro256pp;

const THREADS: [usize; 2] = [1, 8];

/// Same construction as `thread_invariance.rs`: mixed supports and skews
/// so candidates retire at different iterations and the traced phase
/// stream is non-trivial.
fn dataset(seed: u64, n: usize) -> Dataset {
    let mut r = Xoshiro256pp::seed_from_u64(seed);
    let mut fields = Vec::new();
    let mut columns = Vec::new();
    for (i, &support) in [1u32, 2, 3, 8, 40, 200].iter().enumerate() {
        let skew = i % 2 == 0;
        let codes: Vec<u32> = (0..n)
            .map(|_| {
                let c = r.next_below(support as u64) as u32;
                if skew && r.next_below(4) != 0 {
                    0
                } else {
                    c
                }
            })
            .collect();
        fields.push(Field::new(format!("a{i}"), support));
        columns.push(Column::new(codes, support).unwrap());
    }
    Dataset::new(Schema::new(fields), columns).unwrap()
}

fn config(seed: u64, threads: usize) -> SwopeConfig {
    SwopeConfig::with_epsilon(0.2).with_seed(seed).with_threads(threads)
}

/// A traced executor plus the observer feeding the same sink, and a
/// closure to assert the trace looked like a real query afterwards.
fn traced(threads: usize) -> (Executor, TraceObserver, Arc<SpanSink>) {
    let sink = SpanSink::new(TraceId::next_seeded());
    let root = sink.open_at("request", None, 0);
    let exec = Executor::new(threads).with_trace(Arc::clone(&sink), root);
    let obs = TraceObserver::new(Arc::clone(&sink), Some(root));
    (exec, obs, sink)
}

fn assert_complete_trace(sink: &Arc<SpanSink>, threads: usize) {
    let (spans, dropped) = sink.drain();
    assert_eq!(dropped, 0, "trace overflowed its span cap");
    let query = spans
        .iter()
        .find(|s| s.name.starts_with("query:"))
        .unwrap_or_else(|| panic!("no query span in {spans:?}"));
    assert!(query.end_ns > 0, "query span never closed");
    for phase in ["sample_grow", "ingest", "update_bounds", "decide"] {
        assert!(
            spans.iter().any(|s| s.name == phase && s.parent == Some(query.id)),
            "missing {phase} span (threads = {threads})"
        );
    }
    // Phase time nests inside the query span's interval.
    let phase_total: u64 = spans
        .iter()
        .filter(|s| s.parent == Some(query.id))
        .map(|s| s.end_ns.saturating_sub(s.start_ns))
        .sum();
    assert!(
        phase_total <= query.end_ns,
        "phase nanos {phase_total} exceed query wall {}",
        query.end_ns
    );
}

macro_rules! trace_invariant {
    ($name:ident, $plain:expr, $traced:expr) => {
        #[test]
        fn $name() {
            let ds = dataset(1 + line!() as u64, 12_000);
            #[allow(clippy::redundant_closure_call)]
            let baseline = ($plain)(&ds).unwrap();
            for t in THREADS {
                let (exec, mut obs, sink) = traced(t);
                #[allow(clippy::redundant_closure_call)]
                let traced_result = ($traced)(&ds, &mut obs, &exec, t).unwrap();
                assert_eq!(traced_result, baseline, "tracing changed the answer (threads = {t})");
                assert_complete_trace(&sink, t);
            }
        }
    };
}

trace_invariant!(
    entropy_top_k_is_trace_invariant,
    |ds: &Dataset| entropy_top_k(ds, 3, &config(1, 1)),
    |ds: &Dataset, obs: &mut TraceObserver, exec: &Executor, t: usize| {
        entropy_top_k_exec(ds, 3, &config(1, t), obs, exec)
    }
);

trace_invariant!(
    entropy_filter_is_trace_invariant,
    |ds: &Dataset| entropy_filter(ds, 1.0, &config(2, 1)),
    |ds: &Dataset, obs: &mut TraceObserver, exec: &Executor, t: usize| {
        entropy_filter_exec(ds, 1.0, &config(2, t), obs, exec)
    }
);

trace_invariant!(
    mi_top_k_is_trace_invariant,
    |ds: &Dataset| mi_top_k(ds, 5, 3, &config(3, 1)),
    |ds: &Dataset, obs: &mut TraceObserver, exec: &Executor, t: usize| {
        mi_top_k_exec(ds, 5, 3, &config(3, t), obs, exec)
    }
);

trace_invariant!(
    mi_filter_is_trace_invariant,
    |ds: &Dataset| mi_filter(ds, 5, 0.1, &config(4, 1)),
    |ds: &Dataset, obs: &mut TraceObserver, exec: &Executor, t: usize| {
        mi_filter_exec(ds, 5, 0.1, &config(4, t), obs, exec)
    }
);

trace_invariant!(
    entropy_profile_is_trace_invariant,
    |ds: &Dataset| entropy_profile(ds, 0.05, &config(5, 1)),
    |ds: &Dataset, obs: &mut TraceObserver, exec: &Executor, t: usize| {
        entropy_profile_exec(ds, 0.05, &config(5, t), obs, exec)
    }
);

trace_invariant!(
    mi_profile_is_trace_invariant,
    |ds: &Dataset| mi_profile(ds, 5, 0.05, &config(6, 1)),
    |ds: &Dataset, obs: &mut TraceObserver, exec: &Executor, t: usize| {
        mi_profile_exec(ds, 5, 0.05, &config(6, t), obs, exec)
    }
);

/// With `threads = 8` the traced executor's pooled fan-outs must leave
/// `exec_dispatch` spans behind — proof the trace binding reaches the
/// pool — while `threads = 1` leaves none (inline fan-outs are untimed).
#[test]
fn exec_dispatch_spans_follow_parallelism() {
    let ds = dataset(42, 12_000);
    for (t, expect_dispatches) in [(1usize, false), (8, true)] {
        let (exec, mut obs, sink) = traced(t);
        entropy_top_k_exec(&ds, 3, &config(42, t), &mut obs, &exec).unwrap();
        let (spans, _) = sink.drain();
        let n = spans.iter().filter(|s| s.name == "exec_dispatch").count();
        assert_eq!(n > 0, expect_dispatches, "threads = {t}, dispatch spans = {n}");
    }
}
