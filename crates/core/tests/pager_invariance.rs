//! Determinism property for the out-of-core pager: every adaptive loop
//! must return bitwise-identical results whether the dataset lives on
//! the heap, is memory-mapped page-by-page, or is paged under a byte
//! budget small enough to force continuous eviction.
//!
//! The pager changes only where code bytes live between touches. Every
//! paged read path (cursor ingest, `gather_widen`, per-page predicate
//! scans) produces the exact same code sequence the heap's packed slices
//! do, so the `(counter, joint)` update order — and therefore every
//! float — is identical. This is the acceptance bar for `swope-pager`:
//! heap / mmap / budget-evicting modes × widths {u8,u16,u32} × exec
//! threads {1,8}, across all six loops plus the scoped and sharded
//! entry points.

use std::sync::Arc;

use swope_columnar::{snapshot, Column, Dataset, DatasetSketch, Field, PageCache, Schema, Width};
use swope_core::{
    entropy_filter, entropy_filter_scoped_exec, entropy_filter_sharded_exec, entropy_profile,
    entropy_profile_scoped_exec, entropy_profile_sharded_exec, entropy_top_k,
    entropy_top_k_scoped_exec, entropy_top_k_sharded_exec, mi_filter, mi_filter_scoped_exec,
    mi_filter_sharded_exec, mi_profile, mi_profile_scoped_exec, mi_profile_sharded_exec, mi_top_k,
    mi_top_k_scoped_exec, mi_top_k_sharded_exec, Executor, NoopObserver, Scope, SwopeConfig,
};
use swope_sampling::rng::Xoshiro256pp;

const THREADS: [usize; 2] = [1, 8];

/// Rows: two full 64Ki pages plus a partial third, so page boundaries
/// and the tail page are both exercised.
const ROWS: usize = 150_000;

/// Tight enough that the u32 column alone (4 pages, 256 KiB each)
/// cannot stay resident, loose enough that the pinned page plus one
/// neighbour always fit: eviction churns on every scan.
const BUDGET: u64 = 600_000;

/// Supports spanning all three packed widths, with skew on the narrow
/// columns (so RLE/palette demotion picks actually fire) and a small
/// target for the MI loops.
fn dataset(seed: u64) -> Dataset {
    let mut r = Xoshiro256pp::seed_from_u64(seed);
    let mut make = |support: u32, skew: bool| -> Vec<u32> {
        (0..ROWS)
            .map(|_| {
                let c = r.next_below(support as u64) as u32;
                if skew && r.next_below(4) != 0 {
                    c % 3
                } else {
                    c
                }
            })
            .collect()
    };
    let specs: [(&str, u32, bool); 4] =
        [("target", 5, true), ("narrow", 40, true), ("mid", 2_000, false), ("wide", 70_000, false)];
    let mut fields = Vec::new();
    let mut columns = Vec::new();
    for (name, support, skew) in specs {
        let codes = make(support, skew);
        fields.push(Field::new(name, support));
        columns.push(Column::new(codes, support).unwrap());
    }
    Dataset::new(Schema::new(fields), columns).unwrap()
}

fn temp_snapshot(ds: &Dataset, name: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("swope-pager-inv-{}-{name}", std::process::id()));
    snapshot::write_file(ds, &path).unwrap();
    path
}

fn config(seed: u64, threads: usize) -> SwopeConfig {
    SwopeConfig::with_epsilon(0.2).with_seed(seed).with_threads(threads)
}

struct Mode {
    label: &'static str,
    dataset: Dataset,
    sketch: Option<DatasetSketch>,
    cache: Option<Arc<PageCache>>,
}

/// The one dataset in its three storage modes. The paged modes read the
/// same snapshot file the heap mode decoded eagerly.
fn modes(seed: u64) -> (Vec<Mode>, std::path::PathBuf) {
    let ds = dataset(seed);
    assert_eq!(ds.column(1).width(), Width::U8);
    assert_eq!(ds.column(2).width(), Width::U16);
    assert_eq!(ds.column(3).width(), Width::U32);
    let path = temp_snapshot(&ds, &format!("{seed}.swop"));
    let (heap, heap_sketch) = snapshot::read_file_with_sketch(&path).unwrap();
    let mut out = vec![Mode { label: "heap", dataset: heap, sketch: heap_sketch, cache: None }];
    for (label, budget) in [("mmap", None), ("budget", Some(BUDGET))] {
        let cache = Arc::new(PageCache::new(budget));
        let (paged, sketch) = snapshot::open_paged(&path, Arc::clone(&cache)).unwrap();
        for attr in 0..paged.num_attrs() {
            assert!(paged.column(attr).is_paged(), "{label} column {attr} should be paged");
        }
        out.push(Mode { label, dataset: paged, sketch, cache: Some(cache) });
    }
    (out, path)
}

/// Runs `query` on every mode × thread count and asserts each result is
/// identical to the heap single-thread baseline. The budget mode must
/// actually have evicted (otherwise it degenerates to the mmap mode and
/// proves nothing) and must fit its configured budget after a trim —
/// concurrent gathers (8 exec threads, and the sharded test's 4 shards)
/// pin pages past the budget while they run, and only the next
/// admission or an explicit `trim()` reclaims the overshoot.
fn assert_pager_invariant<R: PartialEq + std::fmt::Debug>(
    seed: u64,
    query: impl Fn(&Mode, &SwopeConfig) -> R,
) {
    let (modes, path) = modes(seed);
    let baseline = query(&modes[0], &config(seed, 1));
    for mode in &modes {
        for t in THREADS {
            assert_eq!(
                query(mode, &config(seed, t)),
                baseline,
                "mode = {}, threads = {t}",
                mode.label
            );
        }
        if let Some(cache) = &mode.cache {
            let snap = cache.snapshot();
            assert!(snap.faults > 0, "{}: queries should fault pages in", mode.label);
            if let Some(budget) = snap.budget_bytes {
                assert!(snap.evictions > 0, "budget mode never evicted");
                cache.trim();
                let resident = cache.snapshot().resident_bytes;
                assert!(
                    resident <= budget,
                    "trimmed steady-state resident {resident} exceeds budget {budget}"
                );
            } else {
                assert_eq!(snap.evictions, 0, "unbounded cache must not evict");
            }
        }
    }
    let _ = std::fs::remove_file(path);
}

/// A scope that exercises both the range clamp and the sketch-guided
/// predicate scan (the skewed narrow column makes some pages skippable).
fn scope() -> Scope {
    Scope::range(10_000, 140_000).with_predicate(1, 2)
}

#[test]
fn entropy_top_k_is_pager_invariant() {
    assert_pager_invariant(31, |m, cfg| entropy_top_k(&m.dataset, 3, cfg).unwrap());
}

#[test]
fn entropy_filter_is_pager_invariant() {
    assert_pager_invariant(32, |m, cfg| entropy_filter(&m.dataset, 1.0, cfg).unwrap());
}

#[test]
fn mi_top_k_is_pager_invariant() {
    assert_pager_invariant(33, |m, cfg| mi_top_k(&m.dataset, 0, 2, cfg).unwrap());
}

#[test]
fn mi_filter_is_pager_invariant() {
    assert_pager_invariant(34, |m, cfg| mi_filter(&m.dataset, 0, 0.05, cfg).unwrap());
}

#[test]
fn entropy_profile_is_pager_invariant() {
    assert_pager_invariant(35, |m, cfg| entropy_profile(&m.dataset, 0.05, cfg).unwrap());
}

#[test]
fn mi_profile_is_pager_invariant() {
    assert_pager_invariant(36, |m, cfg| mi_profile(&m.dataset, 0, 0.05, cfg).unwrap());
}

#[test]
fn scoped_queries_are_pager_invariant() {
    assert_pager_invariant(37, |m, cfg| {
        let exec = Executor::new(cfg.threads);
        let scope = scope();
        let sk = m.sketch.as_ref();
        (
            entropy_top_k_scoped_exec(&m.dataset, 3, &scope, sk, cfg, &mut NoopObserver, &exec)
                .unwrap(),
            entropy_filter_scoped_exec(&m.dataset, 1.0, &scope, sk, cfg, &mut NoopObserver, &exec)
                .unwrap(),
            mi_top_k_scoped_exec(&m.dataset, 0, 2, &scope, sk, cfg, &mut NoopObserver, &exec)
                .unwrap(),
            mi_filter_scoped_exec(&m.dataset, 0, 0.05, &scope, sk, cfg, &mut NoopObserver, &exec)
                .unwrap(),
            entropy_profile_scoped_exec(
                &m.dataset,
                0.05,
                &scope,
                sk,
                cfg,
                &mut NoopObserver,
                &exec,
            )
            .unwrap(),
            mi_profile_scoped_exec(&m.dataset, 0, 0.05, &scope, sk, cfg, &mut NoopObserver, &exec)
                .unwrap(),
        )
    });
}

/// Flips one byte in the last column's final page payload (the byte
/// just before the sketch section, located via the section table:
/// 12-byte header, then 24-byte entries of kind/attr u32 + offset/len
/// u64 with the sketch entry last).
fn corrupt_last_page(path: &std::path::Path) {
    let mut bytes = std::fs::read(path).unwrap();
    let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let entry = 12 + (count - 1) * 24;
    let sketch_off = u64::from_le_bytes(bytes[entry + 8..entry + 16].try_into().unwrap()) as usize;
    bytes[sketch_off - 1] ^= 1;
    std::fs::write(path, bytes).unwrap();
}

#[test]
fn untouched_corrupt_pages_do_not_fail_scoped_sampling_queries() {
    let seed = 39;
    let ds = dataset(seed);
    let path = temp_snapshot(&ds, "corrupt.swop");
    corrupt_last_page(&path);

    // Eager load validates every CRC up front and refuses the file.
    assert!(snapshot::read_file_with_sketch(&path).is_err());

    // Paged open defers CRCs to first touch, so a scope confined to the
    // first two pages (rows < 100k never reach the final page starting
    // at row 131072) samples normally — and answers exactly what the
    // pristine in-memory dataset does.
    let (paged, sketch) = snapshot::open_paged(&path, Arc::new(PageCache::unbounded())).unwrap();
    let scope = Scope::range(0, 100_000);
    let cfg = config(seed, 1);
    let exec = Executor::new(cfg.threads);
    let got = entropy_top_k_scoped_exec(
        &paged,
        3,
        &scope,
        sketch.as_ref(),
        &cfg,
        &mut NoopObserver,
        &exec,
    )
    .unwrap();
    let want =
        entropy_top_k_scoped_exec(&ds, 3, &scope, sketch.as_ref(), &cfg, &mut NoopObserver, &exec)
            .unwrap();
    assert_eq!(got, want, "corruption outside the scope must be invisible");

    // Touching the bad page is a one-line error naming its index.
    let last = paged.num_attrs() - 1;
    let err = paged.column(last).paged().unwrap().value_counts().unwrap_err();
    assert_eq!(err.to_string(), "corrupt store data: page 2: checksum mismatch");
    let _ = std::fs::remove_file(path);
}

#[test]
fn sharded_queries_are_pager_invariant() {
    assert_pager_invariant(38, |m, cfg| {
        let exec = Executor::new(cfg.threads);
        (
            entropy_top_k_sharded_exec(&m.dataset, 3, 4, cfg, &mut NoopObserver, &exec).unwrap(),
            entropy_filter_sharded_exec(&m.dataset, 1.0, 4, cfg, &mut NoopObserver, &exec).unwrap(),
            mi_top_k_sharded_exec(&m.dataset, 0, 2, 4, cfg, &mut NoopObserver, &exec).unwrap(),
            mi_filter_sharded_exec(&m.dataset, 0, 0.05, 4, cfg, &mut NoopObserver, &exec).unwrap(),
            entropy_profile_sharded_exec(&m.dataset, 0.05, 4, cfg, &mut NoopObserver, &exec)
                .unwrap(),
            mi_profile_sharded_exec(&m.dataset, 0, 0.05, 4, cfg, &mut NoopObserver, &exec).unwrap(),
        )
    });
}
