//! Determinism property: every adaptive loop must return bitwise-identical
//! results regardless of the physical width columns are packed at.
//!
//! Width packing changes only how codes are *stored* (`u8`/`u16`/`u32`);
//! every ingest widens each code to `u32` before touching a counter, so
//! the `(counter, joint)` update sequence — and therefore every float —
//! is identical across widths. This is the acceptance bar for the
//! width-generic gather path: a dataset loaded from a v1 snapshot
//! (all-`u32`) must answer queries exactly like the same dataset packed
//! narrow, at any thread count.

use swope_columnar::{Column, Dataset, Field, Schema, Width};
use swope_core::{
    entropy_filter, entropy_profile, entropy_top_k, mi_filter, mi_profile, mi_top_k,
    mi_top_k_batch, SwopeConfig,
};
use swope_sampling::rng::Xoshiro256pp;

const THREADS: [usize; 2] = [1, 8];

/// Mixed supports and skews (like the thread-invariance dataset) so
/// candidates retire at different iterations. Supports stay ≤ 200 so
/// every column can be repacked at all three widths.
fn dataset(seed: u64, n: usize) -> Dataset {
    let mut r = Xoshiro256pp::seed_from_u64(seed);
    let mut fields = Vec::new();
    let mut columns = Vec::new();
    for (i, &support) in [1u32, 2, 3, 8, 40, 200].iter().enumerate() {
        let skew = i % 2 == 0;
        let codes: Vec<u32> = (0..n)
            .map(|_| {
                let c = r.next_below(support as u64) as u32;
                if skew && r.next_below(4) != 0 {
                    0
                } else {
                    c
                }
            })
            .collect();
        fields.push(Field::new(format!("a{i}"), support));
        columns.push(Column::new(codes, support).unwrap());
    }
    Dataset::new(Schema::new(fields), columns).unwrap()
}

/// The same logical dataset with every column forced to `width`.
fn repacked(ds: &Dataset, width: Width) -> Dataset {
    let columns = (0..ds.num_attrs())
        .map(|a| ds.column(a).with_width(width).expect("supports fit every width"))
        .collect();
    Dataset::new(ds.schema().clone(), columns).unwrap()
}

fn config(seed: u64, threads: usize) -> SwopeConfig {
    SwopeConfig::with_epsilon(0.2).with_seed(seed).with_threads(threads)
}

/// Runs `query` on the dataset packed at each width × each thread count
/// and asserts every result equals the natural-width single-thread run.
fn assert_width_invariant<R: PartialEq + std::fmt::Debug>(
    seed: u64,
    query: impl Fn(&Dataset, &SwopeConfig) -> R,
) {
    let ds = dataset(seed, 12_000);
    let baseline = query(&ds, &config(seed, 1));
    for width in [Width::U8, Width::U16, Width::U32] {
        let packed = repacked(&ds, width);
        for a in 0..packed.num_attrs() {
            assert_eq!(packed.column(a).width(), width);
        }
        for t in THREADS {
            assert_eq!(
                query(&packed, &config(seed, t)),
                baseline,
                "width = {width}, threads = {t}"
            );
        }
    }
}

#[test]
fn entropy_top_k_is_width_invariant() {
    assert_width_invariant(21, |ds, cfg| entropy_top_k(ds, 3, cfg).unwrap());
}

#[test]
fn entropy_filter_is_width_invariant() {
    assert_width_invariant(22, |ds, cfg| entropy_filter(ds, 1.0, cfg).unwrap());
}

#[test]
fn mi_top_k_is_width_invariant() {
    assert_width_invariant(23, |ds, cfg| mi_top_k(ds, 5, 3, cfg).unwrap());
}

#[test]
fn mi_filter_is_width_invariant() {
    assert_width_invariant(24, |ds, cfg| mi_filter(ds, 5, 0.1, cfg).unwrap());
}

#[test]
fn entropy_profile_is_width_invariant() {
    assert_width_invariant(25, |ds, cfg| entropy_profile(ds, 0.05, cfg).unwrap());
}

#[test]
fn mi_profile_is_width_invariant() {
    assert_width_invariant(26, |ds, cfg| mi_profile(ds, 5, 0.05, cfg).unwrap());
}

#[test]
fn mi_top_k_batch_is_width_invariant() {
    assert_width_invariant(27, |ds, cfg| mi_top_k_batch(ds, &[0, 3, 5], 2, cfg).unwrap());
}
