//! Glue between the adaptive loops and [`swope_obs::QueryObserver`].
//!
//! Each loop owns one [`Instrumented`] for its whole run. It keeps the
//! [`QueryStats`] bookkeeping (trace, aggregates, retirement counts) and
//! mirrors every recorded fact to the attached observer, so `QueryStats`
//! is effectively "just another observer" without the loops calling two
//! APIs. The loops stay generic over the observer type: with
//! [`swope_obs::NoopObserver`] every hook body is empty and
//! [`phase_start`](Instrumented::phase_start) never reads the clock, so
//! the unobserved monomorphization is the pre-observability hot path.
//!
//! Observer hooks are invoked from the serial sections of the loops only.
//! `QueryStats` deliberately carries no wall-clock data — observed and
//! unobserved runs of the same seeded query return bitwise-identical
//! results (the determinism tests compare them with `==`).

use std::time::Instant;

use swope_obs::{AttrBounds, Phase, QueryKind, QueryMeta, QueryObserver, RunStats};

use crate::report::{QueryStats, WorkKind};
use crate::SwopeConfig;

/// Per-query instrumentation context: stats bookkeeping + observer fanout.
pub(crate) struct Instrumented<'a, O: QueryObserver> {
    obs: &'a mut O,
    /// The stats being assembled for the query result.
    pub stats: QueryStats,
    /// Current 1-based doubling iteration (0 before the first
    /// [`begin_iteration`](Self::begin_iteration)).
    iter: usize,
}

impl<'a, O: QueryObserver> Instrumented<'a, O> {
    /// Starts an instrumented query and emits `query_start`.
    pub fn start(
        obs: &'a mut O,
        kind: QueryKind,
        num_attrs: usize,
        num_rows: usize,
        config: &SwopeConfig,
    ) -> Self {
        obs.query_start(&QueryMeta {
            kind,
            num_attrs,
            num_rows,
            epsilon: config.epsilon,
            threads: config.threads,
        });
        Self { obs, stats: QueryStats::default(), iter: 0 }
    }

    /// Accounts a scoped query's scope-resolution work, done before the
    /// first iteration: `rows` physical rows scanned while materializing
    /// the scope (predicate matching), plus an optional wall-clock span
    /// emitted as a `store_sketch` phase at iteration 0. A no-op for
    /// unscoped populations (`rows == 0`, `nanos == None`).
    pub fn setup(&mut self, rows: u64, nanos: Option<u64>) {
        self.stats.rows_scanned += rows;
        if let Some(ns) = nanos {
            self.obs.phase(Phase::StoreSketch, 0, ns);
        }
    }

    /// Advances to the next doubling iteration. Call at the top of the
    /// loop, before any phase of that iteration.
    pub fn begin_iteration(&mut self) {
        self.iter += 1;
    }

    /// The current 1-based iteration.
    pub fn current_iteration(&self) -> usize {
        self.iter
    }

    /// Reads the clock iff the observer wants phase timings. Pair with
    /// [`phase_end`](Self::phase_end) around the phase's code; a
    /// start/stop pair (rather than a closure) lets the enclosed code
    /// borrow `self` for retirement events.
    #[inline]
    pub fn phase_start(&self) -> Option<Instant> {
        if self.obs.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes a phase span opened by [`phase_start`](Self::phase_start).
    #[inline]
    pub fn phase_end(&mut self, phase: Phase, start: Option<Instant>) {
        if let Some(s) = start {
            self.obs.phase(phase, self.iter, s.elapsed().as_nanos() as u64);
        }
    }

    /// Records the iteration snapshot (trace + observer event).
    pub fn iteration(&mut self, m: usize, candidates: usize, lambda: f64) {
        self.stats.record_iteration(m, candidates, lambda);
        debug_assert_eq!(self.stats.iterations, self.iter, "begin_iteration not called");
        self.obs.iteration(self.iter, m, candidates, lambda);
    }

    /// Accounts this iteration's ingestion work.
    pub fn record_work(&mut self, delta_len: usize, candidates: usize, kind: WorkKind) {
        self.stats.record_work(delta_len, candidates, kind);
    }

    /// Marks `attr` as having left the race this iteration, and returns
    /// the iteration for stamping `AttrScore::retired_iteration`.
    pub fn attr_retired(&mut self, attr: usize, lower: f64, upper: f64) -> usize {
        self.stats.note_retirement(self.iter);
        self.obs.attr_retired(attr, self.iter, AttrBounds { lower, upper });
        self.iter
    }

    /// Finalizes the query: emits `query_end` and yields the stats for
    /// the result struct.
    pub fn finish(mut self, converged_early: bool) -> QueryStats {
        self.stats.converged_early = converged_early;
        self.obs.query_end(&RunStats {
            sample_size: self.stats.sample_size,
            iterations: self.stats.iterations,
            rows_scanned: self.stats.rows_scanned,
            converged_early,
        });
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swope_obs::NoopObserver;

    #[derive(Default)]
    struct Log(Vec<String>);

    impl QueryObserver for Log {
        fn query_start(&mut self, meta: &QueryMeta) {
            self.0.push(format!("start {}", meta.kind.name()));
        }
        fn iteration(&mut self, it: usize, m: usize, c: usize, _l: f64) {
            self.0.push(format!("iter {it} m={m} c={c}"));
        }
        fn phase(&mut self, p: Phase, it: usize, _ns: u64) {
            self.0.push(format!("phase {} it={it}", p.name()));
        }
        fn attr_retired(&mut self, attr: usize, it: usize, _b: AttrBounds) {
            self.0.push(format!("retired {attr} it={it}"));
        }
        fn query_end(&mut self, s: &RunStats) {
            self.0.push(format!("end iters={}", s.iterations));
        }
    }

    #[test]
    fn lifecycle_mirrors_stats_and_observer() {
        let mut log = Log::default();
        let cfg = SwopeConfig::default();
        let mut it = Instrumented::start(&mut log, QueryKind::EntropyTopK, 4, 100, &cfg);
        it.begin_iteration();
        let span = it.phase_start();
        it.iteration(10, 4, 0.5);
        it.record_work(10, 4, WorkKind::EntropyMarginals);
        let retired_at = it.attr_retired(2, 0.1, 0.9);
        assert_eq!(retired_at, 1);
        it.phase_end(Phase::Decide, span);
        let stats = it.finish(true);

        assert_eq!(stats.iterations, 1);
        assert_eq!(stats.rows_scanned, 40);
        assert!(stats.converged_early);
        assert_eq!(stats.trace[0].retired, 1);
        assert_eq!(
            log.0,
            vec![
                "start entropy_top_k",
                "iter 1 m=10 c=4",
                "retired 2 it=1",
                "phase decide it=1",
                "end iters=1"
            ]
        );
    }

    #[test]
    fn noop_observer_skips_clock() {
        let mut noop = NoopObserver;
        let it = Instrumented::start(&mut noop, QueryKind::MiTopK, 2, 10, &SwopeConfig::default());
        assert!(it.phase_start().is_none());
    }
}
