//! Scoped queries: restricting any SWOPE query to a row range and/or a
//! single-attribute predicate, accelerated by the snapshot's per-page
//! partition sketch.
//!
//! A [`Scope`] names a sub-population of the dataset: the rows in
//! `[row_start, row_end)` that also satisfy an optional `attr = code`
//! predicate. Every adaptive loop runs unchanged over the scoped
//! population of size `n_s` — the sample is uniform without replacement
//! *from the scope*, bounds use `n = n_s`, and `p_f` defaults to `1/n_s`
//! — so the paper's guarantees hold verbatim over the scoped rows.
//!
//! ## How a scope is sampled
//!
//! * **Full scope** — delegates to the unscoped entry point; results are
//!   bitwise identical to an unscoped call by construction.
//! * **Range scope, entropy queries** — the range is split at page
//!   (64Ki-row) boundaries into fully *covered* pages, whose exact
//!   per-code histograms the [`DatasetSketch`] already holds, and a
//!   *fringe* of at most `2·PAGE_ROWS − 2` boundary rows. The sampler
//!   simulates a uniform WOR draw over the whole scope: each draw first
//!   chooses covered-vs-fringe with the hypergeometric odds
//!   `rem_covered / (rem_covered + rem_fringe)`; a fringe draw yields a
//!   physical row (incremental Fisher–Yates over the materialized fringe),
//!   while a covered draw yields, per attribute, a code drawn WOR from the
//!   covered region's remaining code multiset ([`CoveredDist`]). Covered
//!   draws never touch the store. Marginally per attribute this is
//!   exactly a uniform WOR sample of the scoped code multiset (the
//!   membership process matches row sampling's, and within each side the
//!   draw is uniform WOR), so Lemma 3's bound applies per attribute;
//!   attributes are dependent only across the covered region, which the
//!   union bound over per-attribute events never relied on. At
//!   `m = n_s` every counter holds the exact scoped counts.
//! * **Range scope, MI queries / no sketch** — MI needs joint
//!   co-occurrences, which per-attribute histograms cannot synthesize, so
//!   the scope is sampled physically: a prefix shuffle over `n_s`
//!   offset-mapped into the range.
//! * **Predicate scope** — matching rows are materialized by scanning the
//!   predicate column once, skipping every page whose sketch histogram
//!   proves zero matches; queries then sample the row list physically.
//!
//! ## `rows_scanned` accounting
//!
//! Scoped queries charge physical work only: rows examined while
//! materializing a predicate scope (setup) plus rows gathered from the
//! store during sampling. Covered-region draws are synthesized from
//! sketch histograms without touching the store and are charged zero —
//! `rows_scanned` measures store traffic, which is precisely what the
//! sketch exists to avoid.
//!
//! ## Empty scopes
//!
//! A scope selecting zero rows is well-defined, not an error: every score
//! is 0 with collapsed bounds `[0, 0]` (the empirical entropy of an empty
//! population is 0 by convention), top-k returns the first `k`
//! (candidate) attributes in index order, filters accept exactly when
//! `η = 0`, and the stats report zero iterations with
//! `converged_early = true`.

use std::ops::Range;
use std::time::Instant;

use swope_columnar::{AttrIndex, Code, CodeRepr, ColumnStorage, Dataset, DatasetSketch};
use swope_estimate::entropy::EntropyCounter;
use swope_obs::{QueryKind, QueryObserver};
use swope_sampling::rng::Xoshiro256pp;
use swope_sampling::Sampler;
use swope_store::for_packed;
use swope_store::page::PAGE_ROWS;

use crate::exec::Executor;
use crate::observe::Instrumented;
use crate::report::{AttrScore, FilterResult, QueryStats, TopKResult};
use crate::state::{make_sampler, EntropyState};
use crate::{ProfileResult, SamplingStrategy, SwopeConfig, SwopeError};

/// A restriction of a query to part of the dataset: a row range
/// intersected with an optional single-attribute equality predicate.
///
/// `None` bounds mean "unbounded on that side"; `row_end` is exclusive
/// and clamped to the dataset's row count. The default scope selects
/// everything.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Scope {
    /// First row of the scope (inclusive). `None` means row 0.
    pub row_start: Option<usize>,
    /// One past the last row of the scope. `None` means the dataset end;
    /// larger values are clamped.
    pub row_end: Option<usize>,
    /// Keep only rows whose `attr` column equals `code`.
    pub predicate: Option<(AttrIndex, Code)>,
}

impl Scope {
    /// The unrestricted scope (every row).
    pub fn all() -> Self {
        Self::default()
    }

    /// A pure row-range scope `[start, end)`.
    pub fn range(start: usize, end: usize) -> Self {
        Self { row_start: Some(start), row_end: Some(end), predicate: None }
    }

    /// Returns a copy with the predicate `attr = code` added.
    pub fn with_predicate(mut self, attr: AttrIndex, code: Code) -> Self {
        self.predicate = Some((attr, code));
        self
    }

    /// Whether this scope is syntactically unrestricted (no predicate,
    /// no effective bounds). A bounded scope that happens to cover every
    /// row is also treated as full, but only [`resolve_scope`] can tell.
    pub fn is_all(&self) -> bool {
        self.predicate.is_none() && self.row_start.unwrap_or(0) == 0 && self.row_end.is_none()
    }
}

/// What a [`Scope`] resolved to against a concrete dataset.
pub(crate) enum ResolvedScope {
    /// The scope covers the whole dataset.
    Full,
    /// A proper sub-range of rows, no predicate.
    RowRange(Range<usize>),
    /// An explicit, ascending list of matching physical rows.
    Rows(Vec<u32>),
}

/// A resolved scope plus the bookkeeping the loops need.
pub(crate) struct ScopeSetup {
    pub(crate) resolved: ResolvedScope,
    /// Scoped population size `n_s`.
    pub(crate) n: usize,
    /// Physical rows examined while materializing the scope.
    pub(crate) setup_rows: u64,
}

/// A sketch is only trusted when its shape matches the dataset; anything
/// else (stale file, wrong dataset) is treated as absent, which costs
/// speed but never correctness.
fn usable_sketch<'a>(
    dataset: &Dataset,
    sketch: Option<&'a DatasetSketch>,
) -> Option<&'a DatasetSketch> {
    sketch
        .filter(|sk| sk.num_rows() == dataset.num_rows() && sk.num_columns() == dataset.num_attrs())
}

/// Validates `scope` against `dataset` and materializes predicate scopes
/// (with sketch-based page pruning when a matching sketch is supplied).
pub(crate) fn resolve_scope(
    dataset: &Dataset,
    sketch: Option<&DatasetSketch>,
    scope: &Scope,
) -> Result<ScopeSetup, SwopeError> {
    let num_rows = dataset.num_rows();
    let start = scope.row_start.unwrap_or(0);
    let end = scope.row_end.unwrap_or(num_rows).min(num_rows);
    if start > end {
        return Err(SwopeError::InvalidScope(format!(
            "row range starts at {start} but ends at {end}"
        )));
    }
    match scope.predicate {
        None if start == 0 && end == num_rows => {
            Ok(ScopeSetup { resolved: ResolvedScope::Full, n: num_rows, setup_rows: 0 })
        }
        None => Ok(ScopeSetup {
            resolved: ResolvedScope::RowRange(start..end),
            n: end - start,
            setup_rows: 0,
        }),
        Some((attr, code)) => {
            let h = dataset.num_attrs();
            if attr >= h {
                return Err(SwopeError::InvalidScope(format!(
                    "predicate attribute {attr} out of range (dataset has {h})"
                )));
            }
            let support = dataset.support(attr);
            if code >= support {
                return Err(SwopeError::InvalidScope(format!(
                    "predicate code {code} outside attribute {attr}'s support {support}"
                )));
            }
            let sketch = usable_sketch(dataset, sketch);
            let (rows, scanned) = scan_predicate(dataset, sketch, start..end, attr, code);
            let n = rows.len();
            Ok(ScopeSetup { resolved: ResolvedScope::Rows(rows), n, setup_rows: scanned })
        }
    }
}

/// Collects the rows in `range` whose `attr` code equals `code`, skipping
/// pages the sketch proves empty of matches. Returns the rows (ascending)
/// and the number of rows actually examined.
fn scan_predicate(
    dataset: &Dataset,
    sketch: Option<&DatasetSketch>,
    range: Range<usize>,
    attr: AttrIndex,
    code: Code,
) -> (Vec<u32>, u64) {
    let column = dataset.column(attr);
    let mut rows = Vec::new();
    let mut scanned = 0u64;
    let first_page = range.start / PAGE_ROWS;
    let last_page = range.end.div_ceil(PAGE_ROWS);
    match column.storage() {
        ColumnStorage::Heap(packed) => for_packed!(packed.codes(), |codes| {
            for page in first_page..last_page {
                if let Some(sk) = sketch {
                    if sk.column(attr).is_some_and(|c| c.page_count(page, code) == 0) {
                        continue;
                    }
                }
                let lo = range.start.max(page * PAGE_ROWS);
                let hi = range.end.min((page + 1) * PAGE_ROWS);
                scanned += (hi - lo) as u64;
                for (off, c) in codes[lo..hi].iter().enumerate() {
                    if c.widen() == code {
                        rows.push((lo + off) as u32);
                    }
                }
            }
        }),
        // A paged column scans through a cursor, so sketch-skipped pages
        // are never faulted (and never CRC-checked) — a predicate scan
        // touches exactly the pages that can hold matches.
        ColumnStorage::Paged(paged) => {
            let mut cur = paged.cursor();
            for page in first_page..last_page {
                if let Some(sk) = sketch {
                    if sk.column(attr).is_some_and(|c| c.page_count(page, code) == 0) {
                        continue;
                    }
                }
                let lo = range.start.max(page * PAGE_ROWS);
                let hi = range.end.min((page + 1) * PAGE_ROWS);
                scanned += (hi - lo) as u64;
                for r in lo..hi {
                    if cur.code(r) == code {
                        rows.push(r as u32);
                    }
                }
            }
        }
    }
    (rows, scanned)
}

/// WOR sampler over a multiset of codes: the covered region's remaining
/// per-code counts, kept in a Fenwick tree so each draw costs
/// `O(log u)`. One per attribute, each with an independently forked RNG,
/// so per-attribute draw sequences are deterministic regardless of
/// executor thread count or candidate pruning order.
#[derive(Debug, Clone)]
pub struct CoveredDist {
    /// 1-based Fenwick tree over remaining per-code counts.
    tree: Vec<u64>,
    remaining: u64,
    rng: Xoshiro256pp,
}

impl CoveredDist {
    pub(crate) fn new(counts: &[u64], rng: Xoshiro256pp) -> Self {
        let u = counts.len();
        let mut tree = vec![0u64; u + 1];
        for (i, &c) in counts.iter().enumerate() {
            let i = i + 1;
            tree[i] += c;
            let j = i + (i & i.wrapping_neg());
            if j <= u {
                tree[j] += tree[i];
            }
        }
        Self { tree, remaining: counts.iter().sum(), rng }
    }

    /// Covered records not yet drawn.
    #[cfg(test)]
    pub(crate) fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Draws `k` codes uniformly without replacement and ingests them
    /// into `counter`. Drawing everything that remains skips the
    /// per-draw walk and bulk-adds the leftover counts (the multiset is
    /// fully consumed whatever the order).
    pub(crate) fn draw_into(&mut self, counter: &mut EntropyCounter, k: u64) {
        debug_assert!(k <= self.remaining, "covered overdraw: {k} > {}", self.remaining);
        if k == 0 {
            return;
        }
        if k >= self.remaining {
            self.drain_all(counter);
            return;
        }
        for _ in 0..k {
            let rank = self.rng.next_below(self.remaining);
            let code = self.descend(rank);
            self.dec(code);
            counter.add(code);
        }
    }

    /// The code whose cumulative-count interval contains `rank`
    /// (classic Fenwick descend).
    fn descend(&self, mut rank: u64) -> u32 {
        let u = self.tree.len() - 1;
        let mut pos = 0usize;
        let mut bit = u.next_power_of_two();
        if bit > u {
            bit >>= 1;
        }
        while bit > 0 {
            let next = pos + bit;
            if next <= u && self.tree[next] <= rank {
                rank -= self.tree[next];
                pos = next;
            }
            bit >>= 1;
        }
        pos as u32
    }

    fn dec(&mut self, code: u32) {
        self.remaining -= 1;
        let u = self.tree.len() - 1;
        let mut i = code as usize + 1;
        while i <= u {
            self.tree[i] -= 1;
            i += i & i.wrapping_neg();
        }
    }

    fn prefix(&self, mut i: usize) -> u64 {
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i &= i - 1;
        }
        sum
    }

    fn drain_all(&mut self, counter: &mut EntropyCounter) {
        for code in 0..self.tree.len() - 1 {
            let count = self.prefix(code + 1) - self.prefix(code);
            counter.add_count(code as u32, count);
        }
        self.tree.fill(0);
        self.remaining = 0;
    }
}

/// RNG fork labels for the hybrid sampler's independent streams.
const MEMBER_LABEL: u64 = 0x5C09;
const FRINGE_LABEL: u64 = 0xF219;
const DIST_LABEL: u64 = 0xD157;

/// The hybrid covered/fringe sampler for range-scoped entropy queries.
pub(crate) struct HybridPop {
    n: usize,
    drawn: usize,
    rem_covered: u64,
    rem_fringe: u64,
    member_rng: Xoshiro256pp,
    fringe_rows: Vec<u32>,
    fringe_fixed: usize,
    fringe_rng: Xoshiro256pp,
    /// Fringe rows in draw order (the physical delta the loops ingest).
    rows: Vec<u32>,
    /// Per-attribute covered-region code counts (summed sketch pages).
    covered_counts: Vec<Vec<u64>>,
    dist_base: Xoshiro256pp,
}

impl HybridPop {
    fn grow(&mut self, target: usize) -> (Range<usize>, u64) {
        let target = target.min(self.n);
        let before = self.rows.len();
        let mut covered_k = 0u64;
        while self.drawn < target {
            let rem = self.rem_covered + self.rem_fringe;
            if self.member_rng.next_below(rem) < self.rem_covered {
                self.rem_covered -= 1;
                covered_k += 1;
            } else {
                // One incremental Fisher–Yates step over the fringe.
                let i = self.fringe_fixed;
                let span = (self.fringe_rows.len() - i) as u64;
                let j = i + self.fringe_rng.next_below(span) as usize;
                self.fringe_rows.swap(i, j);
                self.rows.push(self.fringe_rows[i]);
                self.fringe_fixed += 1;
                self.rem_fringe -= 1;
            }
            self.drawn += 1;
        }
        (before..self.rows.len(), covered_k)
    }

    fn dist_for(&self, attr: AttrIndex) -> CoveredDist {
        CoveredDist::new(&self.covered_counts[attr], self.dist_base.fork(attr as u64))
    }
}

/// How a physical sampler's draws map to dataset rows.
enum RowMap {
    /// Draws are dataset rows (unscoped).
    Identity,
    /// Draws index a contiguous range starting here (range scope).
    Offset(u32),
    /// Draws index an explicit row list (predicate scope).
    List(Vec<u32>),
}

enum PopKind {
    Physical { sampler: Box<dyn Sampler>, map: RowMap, rows: Vec<u32> },
    Hybrid(HybridPop),
}

/// The population an adaptive loop samples from: the whole dataset, a
/// mapped sub-population, or the hybrid covered/fringe simulation. All
/// six loops are written against this, so scoped and unscoped queries
/// share one loop body.
pub(crate) struct Population {
    n: usize,
    setup_rows: u64,
    setup_nanos: Option<u64>,
    kind: PopKind,
}

impl Population {
    /// The whole dataset, sampled exactly as the pre-scope code did.
    pub(crate) fn unscoped(num_rows: usize, config: &SwopeConfig) -> Self {
        Self {
            n: num_rows,
            setup_rows: 0,
            setup_nanos: None,
            kind: PopKind::Physical {
                sampler: make_sampler(num_rows, config.sampling),
                map: RowMap::Identity,
                rows: Vec::new(),
            },
        }
    }

    /// A non-full, non-empty resolved scope. `hybrid` enables the
    /// covered/fringe simulation (valid for entropy queries only; MI
    /// queries need joint co-occurrences and must sample physically).
    pub(crate) fn scoped(
        dataset: &Dataset,
        sketch: Option<&DatasetSketch>,
        setup: ScopeSetup,
        config: &SwopeConfig,
        hybrid: bool,
    ) -> Self {
        let seed = match config.sampling {
            SamplingStrategy::Row { seed } | SamplingStrategy::Page { seed, .. } => seed,
        };
        let sketch = usable_sketch(dataset, sketch);
        let kind = match setup.resolved {
            ResolvedScope::Full => unreachable!("full scopes delegate to the unscoped loops"),
            ResolvedScope::RowRange(range) => {
                // Pages fully inside the range are covered; the rest of
                // the range is fringe.
                let first_page = range.start.div_ceil(PAGE_ROWS);
                let last_page = range.end / PAGE_ROWS;
                match sketch {
                    Some(sk) if hybrid && first_page < last_page => {
                        let covered_rows = (last_page - first_page) * PAGE_ROWS;
                        let covered_counts = (0..dataset.num_attrs())
                            .map(|attr| {
                                sk.column(attr)
                                    .map(|c| c.range_counts(first_page..last_page))
                                    .unwrap_or_default()
                            })
                            .collect();
                        let mut fringe_rows =
                            Vec::with_capacity(range.end - range.start - covered_rows);
                        fringe_rows.extend(range.start as u32..(first_page * PAGE_ROWS) as u32);
                        fringe_rows.extend((last_page * PAGE_ROWS) as u32..range.end as u32);
                        let base = Xoshiro256pp::seed_from_u64(seed);
                        PopKind::Hybrid(HybridPop {
                            n: range.end - range.start,
                            drawn: 0,
                            rem_covered: covered_rows as u64,
                            rem_fringe: fringe_rows.len() as u64,
                            member_rng: base.fork(MEMBER_LABEL),
                            fringe_rows,
                            fringe_fixed: 0,
                            fringe_rng: base.fork(FRINGE_LABEL),
                            rows: Vec::new(),
                            covered_counts,
                            dist_base: base.fork(DIST_LABEL),
                        })
                    }
                    _ => PopKind::Physical {
                        sampler: make_sampler(range.end - range.start, config.sampling),
                        map: RowMap::Offset(range.start as u32),
                        rows: Vec::new(),
                    },
                }
            }
            ResolvedScope::Rows(list) => PopKind::Physical {
                sampler: make_sampler(list.len(), config.sampling),
                map: RowMap::List(list),
                rows: Vec::new(),
            },
        };
        Self { n: setup.n, setup_rows: setup.setup_rows, setup_nanos: None, kind }
    }

    /// Stamps the scope-resolution wall-clock span (observer-enabled
    /// scoped runs only).
    pub(crate) fn with_setup_nanos(mut self, nanos: Option<u64>) -> Self {
        self.setup_nanos = nanos;
        self
    }

    /// Population size the loop samples from (`N` unscoped, `n_s` scoped).
    pub(crate) fn n(&self) -> usize {
        self.n
    }

    /// Total draws so far (physical + covered).
    pub(crate) fn sampled(&self) -> usize {
        match &self.kind {
            PopKind::Physical { sampler, .. } => sampler.sampled(),
            PopKind::Hybrid(hp) => hp.drawn,
        }
    }

    /// Grows the sample to `target` draws. Returns the new physical
    /// rows as a range into [`Population::rows`], plus the number of
    /// covered-region draws this growth step (0 for physical
    /// populations).
    pub(crate) fn grow(&mut self, target: usize) -> (Range<usize>, u64) {
        match &mut self.kind {
            PopKind::Physical { sampler, map: RowMap::Identity, .. } => {
                (sampler.grow_delta(target), 0)
            }
            PopKind::Physical { sampler, map, rows } => {
                let before = rows.len();
                let delta_range = sampler.grow_delta(target);
                let delta = &sampler.rows()[delta_range];
                match map {
                    RowMap::Identity => unreachable!(),
                    RowMap::Offset(off) => rows.extend(delta.iter().map(|&r| r + *off)),
                    RowMap::List(list) => rows.extend(delta.iter().map(|&r| list[r as usize])),
                }
                (before..rows.len(), 0)
            }
            PopKind::Hybrid(hp) => hp.grow(target),
        }
    }

    /// All physical rows drawn so far, in draw order.
    pub(crate) fn rows(&self) -> &[u32] {
        match &self.kind {
            PopKind::Physical { sampler, map: RowMap::Identity, .. } => sampler.rows(),
            PopKind::Physical { rows, .. } => rows,
            PopKind::Hybrid(hp) => &hp.rows,
        }
    }

    /// Physical rows examined while resolving the scope.
    pub(crate) fn setup_rows(&self) -> u64 {
        self.setup_rows
    }

    /// Scope-resolution span for the `store_sketch` trace phase.
    pub(crate) fn setup_nanos(&self) -> Option<u64> {
        self.setup_nanos
    }

    /// Hands each entropy state its covered-region distribution (no-op
    /// for physical populations).
    pub(crate) fn attach_covered(&self, states: &mut [EntropyState]) {
        if let PopKind::Hybrid(hp) = &self.kind {
            for st in states {
                st.set_covered(hp.dist_for(st.attr));
            }
        }
    }
}

/// Stats for a query whose scope selected zero rows: zero iterations,
/// trivially converged, charging only the scope-resolution scan.
fn empty_stats<O: QueryObserver>(
    observer: &mut O,
    kind: QueryKind,
    num_attrs: usize,
    config: &SwopeConfig,
    setup: &ScopeSetup,
    started: Option<Instant>,
) -> QueryStats {
    let mut it = Instrumented::start(observer, kind, num_attrs, 0, config);
    it.setup(setup.setup_rows, started.map(|t| t.elapsed().as_nanos() as u64));
    it.finish(true)
}

/// The score of any attribute over an empty population: 0 with collapsed
/// bounds, not produced by an adaptive iteration.
fn zero_score(dataset: &Dataset, attr: AttrIndex) -> AttrScore {
    AttrScore {
        attr,
        name: dataset.schema().field(attr).map(|f| f.name().to_owned()).unwrap_or_default(),
        estimate: 0.0,
        lower: 0.0,
        upper: 0.0,
        retired_iteration: 0,
    }
}

fn elapsed_nanos(started: Option<Instant>) -> Option<u64> {
    started.map(|t| t.elapsed().as_nanos() as u64)
}

/// [`crate::entropy_top_k`] restricted to `scope`.
///
/// A full scope returns bitwise-identical results to the unscoped query;
/// a proper range scope with a matching `sketch` seeds covered pages
/// from sketch histograms and only reads fringe rows from the store.
pub fn entropy_top_k_scoped(
    dataset: &Dataset,
    k: usize,
    scope: &Scope,
    sketch: Option<&DatasetSketch>,
    config: &SwopeConfig,
) -> Result<TopKResult, SwopeError> {
    entropy_top_k_scoped_exec(
        dataset,
        k,
        scope,
        sketch,
        config,
        &mut swope_obs::NoopObserver,
        &Executor::new(config.threads),
    )
}

/// [`entropy_top_k_scoped`] with an observer and executor attached.
pub fn entropy_top_k_scoped_exec<O: QueryObserver>(
    dataset: &Dataset,
    k: usize,
    scope: &Scope,
    sketch: Option<&DatasetSketch>,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<TopKResult, SwopeError> {
    config.validate()?;
    let h = dataset.num_attrs();
    if h == 0 || dataset.num_rows() == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    if k == 0 || k > h {
        return Err(SwopeError::InvalidK { k, candidates: h });
    }
    let started = observer.enabled().then(Instant::now);
    let setup = resolve_scope(dataset, sketch, scope)?;
    if matches!(setup.resolved, ResolvedScope::Full) {
        return crate::topk::entropy_top_k_exec(dataset, k, config, observer, exec);
    }
    if setup.n == 0 {
        let top = (0..h).take(k).map(|a| zero_score(dataset, a)).collect();
        let stats = empty_stats(observer, QueryKind::EntropyTopK, h, config, &setup, started);
        return Ok(TopKResult { top, stats });
    }
    let pop = Population::scoped(dataset, sketch, setup, config, true)
        .with_setup_nanos(elapsed_nanos(started));
    crate::topk::entropy_top_k_run(dataset, k, config, observer, exec, pop)
}

/// [`crate::entropy_filter`] restricted to `scope`.
pub fn entropy_filter_scoped(
    dataset: &Dataset,
    eta: f64,
    scope: &Scope,
    sketch: Option<&DatasetSketch>,
    config: &SwopeConfig,
) -> Result<FilterResult, SwopeError> {
    entropy_filter_scoped_exec(
        dataset,
        eta,
        scope,
        sketch,
        config,
        &mut swope_obs::NoopObserver,
        &Executor::new(config.threads),
    )
}

/// [`entropy_filter_scoped`] with an observer and executor attached.
pub fn entropy_filter_scoped_exec<O: QueryObserver>(
    dataset: &Dataset,
    eta: f64,
    scope: &Scope,
    sketch: Option<&DatasetSketch>,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<FilterResult, SwopeError> {
    config.validate()?;
    if !eta.is_finite() || eta < 0.0 {
        return Err(SwopeError::InvalidThreshold(eta));
    }
    let h = dataset.num_attrs();
    if h == 0 || dataset.num_rows() == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    let started = observer.enabled().then(Instant::now);
    let setup = resolve_scope(dataset, sketch, scope)?;
    if matches!(setup.resolved, ResolvedScope::Full) {
        return crate::filter::entropy_filter_exec(dataset, eta, config, observer, exec);
    }
    if setup.n == 0 {
        let accepted =
            if eta == 0.0 { (0..h).map(|a| zero_score(dataset, a)).collect() } else { Vec::new() };
        let stats = empty_stats(observer, QueryKind::EntropyFilter, h, config, &setup, started);
        return Ok(FilterResult { accepted, stats });
    }
    let pop = Population::scoped(dataset, sketch, setup, config, true)
        .with_setup_nanos(elapsed_nanos(started));
    crate::filter::entropy_filter_run(dataset, eta, config, observer, exec, pop)
}

/// [`crate::entropy_profile`] restricted to `scope`.
pub fn entropy_profile_scoped(
    dataset: &Dataset,
    floor: f64,
    scope: &Scope,
    sketch: Option<&DatasetSketch>,
    config: &SwopeConfig,
) -> Result<ProfileResult, SwopeError> {
    entropy_profile_scoped_exec(
        dataset,
        floor,
        scope,
        sketch,
        config,
        &mut swope_obs::NoopObserver,
        &Executor::new(config.threads),
    )
}

/// [`entropy_profile_scoped`] with an observer and executor attached.
pub fn entropy_profile_scoped_exec<O: QueryObserver>(
    dataset: &Dataset,
    floor: f64,
    scope: &Scope,
    sketch: Option<&DatasetSketch>,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<ProfileResult, SwopeError> {
    config.validate()?;
    if !floor.is_finite() || floor < 0.0 {
        return Err(SwopeError::InvalidThreshold(floor));
    }
    let h = dataset.num_attrs();
    if h == 0 || dataset.num_rows() == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    let started = observer.enabled().then(Instant::now);
    let setup = resolve_scope(dataset, sketch, scope)?;
    if matches!(setup.resolved, ResolvedScope::Full) {
        return crate::profile::entropy_profile_exec(dataset, floor, config, observer, exec);
    }
    if setup.n == 0 {
        let scores = (0..h).map(|a| zero_score(dataset, a)).collect();
        let stats = empty_stats(observer, QueryKind::EntropyProfile, h, config, &setup, started);
        return Ok(ProfileResult { scores, stats });
    }
    let pop = Population::scoped(dataset, sketch, setup, config, true)
        .with_setup_nanos(elapsed_nanos(started));
    crate::profile::entropy_profile_run(dataset, floor, config, observer, exec, pop)
}

/// [`crate::mi_top_k`] restricted to `scope`. MI scopes always sample
/// physically (joint co-occurrences cannot be synthesized from marginal
/// histograms), but predicate scopes still use the sketch to skip
/// matchless pages during row materialization.
pub fn mi_top_k_scoped(
    dataset: &Dataset,
    target: AttrIndex,
    k: usize,
    scope: &Scope,
    sketch: Option<&DatasetSketch>,
    config: &SwopeConfig,
) -> Result<TopKResult, SwopeError> {
    mi_top_k_scoped_exec(
        dataset,
        target,
        k,
        scope,
        sketch,
        config,
        &mut swope_obs::NoopObserver,
        &Executor::new(config.threads),
    )
}

/// [`mi_top_k_scoped`] with an observer and executor attached.
#[allow(clippy::too_many_arguments)]
pub fn mi_top_k_scoped_exec<O: QueryObserver>(
    dataset: &Dataset,
    target: AttrIndex,
    k: usize,
    scope: &Scope,
    sketch: Option<&DatasetSketch>,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<TopKResult, SwopeError> {
    config.validate()?;
    let h = dataset.num_attrs();
    if h == 0 || dataset.num_rows() == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    if target >= h {
        return Err(SwopeError::TargetOutOfRange { target, num_attrs: h });
    }
    if h < 2 {
        return Err(SwopeError::NoCandidates);
    }
    let candidates = h - 1;
    if k == 0 || k > candidates {
        return Err(SwopeError::InvalidK { k, candidates });
    }
    let started = observer.enabled().then(Instant::now);
    let setup = resolve_scope(dataset, sketch, scope)?;
    if matches!(setup.resolved, ResolvedScope::Full) {
        return crate::mi_topk::mi_top_k_exec(dataset, target, k, config, observer, exec);
    }
    if setup.n == 0 {
        let top = (0..h).filter(|&a| a != target).take(k).map(|a| zero_score(dataset, a)).collect();
        let stats = empty_stats(observer, QueryKind::MiTopK, h, config, &setup, started);
        return Ok(TopKResult { top, stats });
    }
    let pop = Population::scoped(dataset, sketch, setup, config, false)
        .with_setup_nanos(elapsed_nanos(started));
    crate::mi_topk::mi_top_k_run(dataset, target, k, config, observer, exec, pop)
}

/// [`crate::mi_filter`] restricted to `scope`.
pub fn mi_filter_scoped(
    dataset: &Dataset,
    target: AttrIndex,
    eta: f64,
    scope: &Scope,
    sketch: Option<&DatasetSketch>,
    config: &SwopeConfig,
) -> Result<FilterResult, SwopeError> {
    mi_filter_scoped_exec(
        dataset,
        target,
        eta,
        scope,
        sketch,
        config,
        &mut swope_obs::NoopObserver,
        &Executor::new(config.threads),
    )
}

/// [`mi_filter_scoped`] with an observer and executor attached.
#[allow(clippy::too_many_arguments)]
pub fn mi_filter_scoped_exec<O: QueryObserver>(
    dataset: &Dataset,
    target: AttrIndex,
    eta: f64,
    scope: &Scope,
    sketch: Option<&DatasetSketch>,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<FilterResult, SwopeError> {
    config.validate()?;
    if !eta.is_finite() || eta < 0.0 {
        return Err(SwopeError::InvalidThreshold(eta));
    }
    let h = dataset.num_attrs();
    if h == 0 || dataset.num_rows() == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    if target >= h {
        return Err(SwopeError::TargetOutOfRange { target, num_attrs: h });
    }
    if h < 2 {
        return Err(SwopeError::NoCandidates);
    }
    let started = observer.enabled().then(Instant::now);
    let setup = resolve_scope(dataset, sketch, scope)?;
    if matches!(setup.resolved, ResolvedScope::Full) {
        return crate::mi_filter::mi_filter_exec(dataset, target, eta, config, observer, exec);
    }
    if setup.n == 0 {
        let accepted = if eta == 0.0 {
            (0..h).filter(|&a| a != target).map(|a| zero_score(dataset, a)).collect()
        } else {
            Vec::new()
        };
        let stats = empty_stats(observer, QueryKind::MiFilter, h, config, &setup, started);
        return Ok(FilterResult { accepted, stats });
    }
    let pop = Population::scoped(dataset, sketch, setup, config, false)
        .with_setup_nanos(elapsed_nanos(started));
    crate::mi_filter::mi_filter_run(dataset, target, eta, config, observer, exec, pop)
}

/// [`crate::mi_profile`] restricted to `scope`.
pub fn mi_profile_scoped(
    dataset: &Dataset,
    target: AttrIndex,
    floor: f64,
    scope: &Scope,
    sketch: Option<&DatasetSketch>,
    config: &SwopeConfig,
) -> Result<ProfileResult, SwopeError> {
    mi_profile_scoped_exec(
        dataset,
        target,
        floor,
        scope,
        sketch,
        config,
        &mut swope_obs::NoopObserver,
        &Executor::new(config.threads),
    )
}

/// [`mi_profile_scoped`] with an observer and executor attached.
#[allow(clippy::too_many_arguments)]
pub fn mi_profile_scoped_exec<O: QueryObserver>(
    dataset: &Dataset,
    target: AttrIndex,
    floor: f64,
    scope: &Scope,
    sketch: Option<&DatasetSketch>,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<ProfileResult, SwopeError> {
    config.validate()?;
    if !floor.is_finite() || floor < 0.0 {
        return Err(SwopeError::InvalidThreshold(floor));
    }
    let h = dataset.num_attrs();
    if h == 0 || dataset.num_rows() == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    if target >= h {
        return Err(SwopeError::TargetOutOfRange { target, num_attrs: h });
    }
    if h < 2 {
        return Err(SwopeError::NoCandidates);
    }
    let started = observer.enabled().then(Instant::now);
    let setup = resolve_scope(dataset, sketch, scope)?;
    if matches!(setup.resolved, ResolvedScope::Full) {
        return crate::profile::mi_profile_exec(dataset, target, floor, config, observer, exec);
    }
    if setup.n == 0 {
        let scores = (0..h).filter(|&a| a != target).map(|a| zero_score(dataset, a)).collect();
        let stats = empty_stats(observer, QueryKind::MiProfile, h, config, &setup, started);
        return Ok(ProfileResult { scores, stats });
    }
    let pop = Population::scoped(dataset, sketch, setup, config, false)
        .with_setup_nanos(elapsed_nanos(started));
    crate::profile::mi_profile_run(dataset, target, floor, config, observer, exec, pop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swope_columnar::{Column, Field, Schema};
    use swope_estimate::entropy::entropy_from_counts;

    fn dataset(n: usize, supports: &[u32]) -> Dataset {
        let fields =
            supports.iter().enumerate().map(|(i, &u)| Field::new(format!("c{i}"), u)).collect();
        let columns = supports
            .iter()
            .map(|&u| {
                Column::new(
                    (0..n)
                        .map(|r| (r as u32).wrapping_mul(2654435761u32.wrapping_add(u)) % u)
                        .collect(),
                    u,
                )
                .unwrap()
            })
            .collect();
        Dataset::new(Schema::new(fields), columns).unwrap()
    }

    fn sketch_of(ds: &Dataset) -> DatasetSketch {
        DatasetSketch::build(ds.num_rows(), (0..ds.num_attrs()).map(|a| ds.column(a).packed()))
    }

    fn exact_entropy_over(ds: &Dataset, attr: usize, rows: impl Iterator<Item = usize>) -> f64 {
        let mut counts = vec![0u64; ds.support(attr) as usize];
        for r in rows {
            counts[ds.column(attr).code(r) as usize] += 1;
        }
        entropy_from_counts(&counts)
    }

    #[test]
    fn covered_dist_drains_to_exact_counts() {
        let counts = vec![5u64, 0, 3, 9, 0, 1];
        let mut dist = CoveredDist::new(&counts, Xoshiro256pp::seed_from_u64(7));
        let mut counter = EntropyCounter::new(6);
        // Draw one at a time so the per-draw path (not the bulk drain)
        // is exercised until the very last draw.
        let total: u64 = counts.iter().sum();
        for _ in 0..total - 1 {
            dist.draw_into(&mut counter, 1);
        }
        dist.draw_into(&mut counter, 1);
        assert_eq!(dist.remaining(), 0);
        assert_eq!(counter.counts(), counts.as_slice());
    }

    #[test]
    fn covered_dist_bulk_drain_matches_counts() {
        let counts = vec![2u64, 7, 0, 4];
        let mut dist = CoveredDist::new(&counts, Xoshiro256pp::seed_from_u64(3));
        let mut counter = EntropyCounter::new(4);
        dist.draw_into(&mut counter, 13);
        assert_eq!(counter.counts(), counts.as_slice());
        assert_eq!(counter.total(), 13);
    }

    #[test]
    fn resolve_rejects_malformed_scopes() {
        let ds = dataset(100, &[4, 8]);
        let inverted = Scope::range(50, 10);
        assert!(matches!(resolve_scope(&ds, None, &inverted), Err(SwopeError::InvalidScope(_))));
        let bad_attr = Scope::all().with_predicate(9, 0);
        assert!(matches!(resolve_scope(&ds, None, &bad_attr), Err(SwopeError::InvalidScope(_))));
        let bad_code = Scope::all().with_predicate(0, 99);
        assert!(matches!(resolve_scope(&ds, None, &bad_code), Err(SwopeError::InvalidScope(_))));
    }

    #[test]
    fn resolve_detects_full_and_clamps() {
        let ds = dataset(100, &[4]);
        for scope in [Scope::all(), Scope::range(0, 100), Scope::range(0, 500)] {
            let setup = resolve_scope(&ds, None, &scope).unwrap();
            assert!(matches!(setup.resolved, ResolvedScope::Full), "{scope:?}");
            assert_eq!(setup.n, 100);
        }
        let setup = resolve_scope(&ds, None, &Scope::range(10, 10)).unwrap();
        assert_eq!(setup.n, 0);
    }

    #[test]
    fn predicate_scope_materializes_matching_rows() {
        let ds = dataset(1000, &[4, 8]);
        let scope = Scope::all().with_predicate(0, 2);
        let setup = resolve_scope(&ds, Some(&sketch_of(&ds)), &scope).unwrap();
        let ResolvedScope::Rows(rows) = &setup.resolved else { panic!("expected rows") };
        let expected: Vec<u32> =
            (0..1000).filter(|&r| ds.column(0).code(r) == 2).map(|r| r as u32).collect();
        assert_eq!(rows, &expected);
        assert_eq!(setup.n, expected.len());
        assert_eq!(setup.setup_rows, 1000);
    }

    #[test]
    fn full_scope_is_bitwise_identical_to_unscoped() {
        let ds = dataset(20_000, &[2, 64, 8]);
        let cfg = SwopeConfig::default().with_seed(11);
        let unscoped = crate::entropy_top_k(&ds, 2, &cfg).unwrap();
        let scoped =
            entropy_top_k_scoped(&ds, 2, &Scope::all(), Some(&sketch_of(&ds)), &cfg).unwrap();
        assert_eq!(unscoped, scoped);
    }

    #[test]
    fn range_scope_without_sketch_matches_brute_force() {
        // A range small enough that the query degenerates to an exact
        // scan of the scope: the result must equal a brute-force recount.
        let ds = dataset(10_000, &[4, 16]);
        let scope = Scope::range(100, 600);
        let r = entropy_top_k_scoped(&ds, 2, &scope, None, &SwopeConfig::default()).unwrap();
        for s in &r.top {
            let exact = exact_entropy_over(&ds, s.attr, 100..600);
            assert!(
                (s.estimate - exact).abs() < 1e-9,
                "attr {}: {} vs {exact}",
                s.attr,
                s.estimate
            );
        }
        assert_eq!(r.stats.sample_size, 500);
    }

    #[test]
    fn hybrid_range_scope_is_exact_at_full_sample() {
        // Scope spans 3 full pages plus unaligned edges on both sides;
        // epsilon is tight enough on this small scope that the loop runs
        // to m = n_s, where hybrid counters must be exactly the scoped
        // counts.
        let n = 6 * PAGE_ROWS;
        let ds = dataset(n, &[3, 7]);
        let sk = sketch_of(&ds);
        let (start, end) = (PAGE_ROWS - 123, 4 * PAGE_ROWS + 456);
        let scope = Scope::range(start, end);
        let cfg = SwopeConfig { epsilon: 0.001, ..SwopeConfig::default() };
        let r = entropy_profile_scoped(&ds, 1e-6, &scope, Some(&sk), &cfg).unwrap();
        assert_eq!(r.stats.sample_size, end - start);
        for s in &r.scores {
            let exact = exact_entropy_over(&ds, s.attr, start..end);
            assert!(
                (s.estimate - exact).abs() < 1e-9,
                "attr {}: {} vs {exact}",
                s.attr,
                s.estimate
            );
        }
    }

    #[test]
    fn hybrid_range_scope_scans_only_fringe_rows() {
        // 17 pages, scope covering 4 full pages plus 500 rows of fringe
        // on each side (~24% of the rows): the hybrid sampler must charge
        // store work only for the 1000 fringe rows it actually gathers,
        // far below the unscoped query's bill.
        let n = 17 * PAGE_ROWS;
        let ds = dataset(n, &[16, 64]);
        let sk = sketch_of(&ds);
        let cfg = SwopeConfig::default().with_seed(3);
        let scope = Scope::range(PAGE_ROWS - 500, 5 * PAGE_ROWS + 500);
        let scoped = entropy_top_k_scoped(&ds, 1, &scope, Some(&sk), &cfg).unwrap();
        let unscoped = crate::entropy_top_k(&ds, 1, &cfg).unwrap();
        assert!(
            scoped.stats.rows_scanned * 4 <= unscoped.stats.rows_scanned,
            "scoped {} vs unscoped {}",
            scoped.stats.rows_scanned,
            unscoped.stats.rows_scanned
        );
        // And the answer still matches the scoped brute force.
        let exact =
            exact_entropy_over(&ds, scoped.top[0].attr, PAGE_ROWS - 500..5 * PAGE_ROWS + 500);
        assert!(scoped.top[0].lower <= exact + 1e-9 && exact <= scoped.top[0].upper + 1e-9);
    }

    #[test]
    fn empty_scope_results_are_well_defined() {
        let ds = dataset(1000, &[4, 8, 2]);
        let cfg = SwopeConfig::default();
        let scope = Scope::range(500, 500);
        let top = entropy_top_k_scoped(&ds, 2, &scope, None, &cfg).unwrap();
        assert_eq!(top.top.len(), 2);
        assert!(top.top.iter().all(|s| s.estimate == 0.0 && s.upper == 0.0));
        assert!(top.stats.converged_early);
        assert_eq!(top.stats.iterations, 0);

        let none = entropy_filter_scoped(&ds, 1.0, &scope, None, &cfg).unwrap();
        assert!(none.accepted.is_empty());
        let all = entropy_filter_scoped(&ds, 0.0, &scope, None, &cfg).unwrap();
        assert_eq!(all.accepted.len(), 3);

        let prof = mi_profile_scoped(&ds, 0, 0.05, &scope, None, &cfg).unwrap();
        assert_eq!(prof.scores.len(), 2);
        assert!(prof.scores.iter().all(|s| s.estimate == 0.0));
    }

    #[test]
    fn mi_scoped_range_matches_full_scan_of_scope() {
        use swope_estimate::joint::mutual_information;
        // Candidate 1 copies the target inside the scope only, so scoped
        // MI differs sharply from unscoped MI.
        let n = 4000;
        let target: Vec<u32> = (0..n).map(|r| (r % 4) as u32).collect();
        let copy: Vec<u32> = (0..n).map(|r| if r < 2000 { (r % 4) as u32 } else { 0 }).collect();
        let ds = Dataset::new(
            Schema::new(vec![Field::new("t", 4), Field::new("c", 4)]),
            vec![Column::new(target, 4).unwrap(), Column::new(copy, 4).unwrap()],
        )
        .unwrap();
        let scope = Scope::range(0, 2000);
        let cfg = SwopeConfig { epsilon: 0.01, ..SwopeConfig::default() };
        let r = mi_top_k_scoped(&ds, 0, 1, &scope, None, &cfg).unwrap();
        // Exact MI over the scoped rows: candidate copies target -> 2 bits.
        let scoped_cols = (
            Column::new((0..2000).map(|r| (r % 4) as u32).collect(), 4).unwrap(),
            Column::new((0..2000).map(|r| (r % 4) as u32).collect(), 4).unwrap(),
        );
        let exact = mutual_information(&scoped_cols.0, &scoped_cols.1);
        assert!(
            (r.top[0].estimate - exact).abs() < 0.1,
            "scoped MI {} vs exact {exact}",
            r.top[0].estimate
        );
    }

    #[test]
    fn predicate_scope_entropy_matches_brute_force() {
        let ds = dataset(8_000, &[4, 32]);
        let sk = sketch_of(&ds);
        let scope = Scope::all().with_predicate(0, 1);
        let cfg = SwopeConfig { epsilon: 0.01, ..SwopeConfig::default() };
        let r = entropy_profile_scoped(&ds, 1e-6, &scope, Some(&sk), &cfg).unwrap();
        let rows: Vec<usize> = (0..8_000).filter(|&row| ds.column(0).code(row) == 1).collect();
        for s in &r.scores {
            let exact = exact_entropy_over(&ds, s.attr, rows.iter().copied());
            assert!(
                (s.estimate - exact).abs() < 1e-6,
                "attr {}: {} vs {exact}",
                s.attr,
                s.estimate
            );
        }
    }

    #[test]
    fn scoped_queries_are_deterministic_and_thread_invariant() {
        let n = 3 * PAGE_ROWS;
        let ds = dataset(n, &[8, 128, 2]);
        let sk = sketch_of(&ds);
        let scope = Scope::range(1000, 2 * PAGE_ROWS + 777);
        let cfg = SwopeConfig::default().with_seed(42);
        let a = entropy_top_k_scoped(&ds, 2, &scope, Some(&sk), &cfg).unwrap();
        let b = entropy_top_k_scoped(&ds, 2, &scope, Some(&sk), &cfg).unwrap();
        assert_eq!(a, b);
        let par =
            entropy_top_k_scoped(&ds, 2, &scope, Some(&sk), &cfg.clone().with_threads(8)).unwrap();
        assert_eq!(a, par);
    }

    #[test]
    fn mismatched_sketch_is_ignored() {
        let ds = dataset(2_000, &[4, 8]);
        let other = dataset(500, &[4, 8]);
        let stale = sketch_of(&other);
        // Must still answer correctly (physically) rather than trusting
        // the wrong histograms.
        let scope = Scope::range(100, 1100);
        let cfg = SwopeConfig { epsilon: 0.01, ..SwopeConfig::default() };
        let r = entropy_profile_scoped(&ds, 1e-6, &scope, Some(&stale), &cfg).unwrap();
        for s in &r.scores {
            let exact = exact_entropy_over(&ds, s.attr, 100..1100);
            assert!((s.estimate - exact).abs() < 1e-6);
        }
    }
}
