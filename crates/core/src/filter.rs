//! Algorithm 2: SWOPE approximate filtering on empirical entropy.

use swope_columnar::Dataset;
use swope_obs::{NoopObserver, Phase, QueryKind, QueryObserver};
use swope_sampling::DoublingSchedule;

use crate::exec::Executor;
use crate::observe::Instrumented;
use crate::report::{AttrScore, FilterResult, WorkKind};
use crate::scope::Population;
use crate::state::{EntropyState, GatherScratch};
use crate::topk::attr_score;
use crate::{SwopeConfig, SwopeError};

/// Approximate filtering query on empirical entropy (paper Algorithm 2).
///
/// Returns a set of attributes such that, with probability at least
/// `1 − p_f` (Definition 6):
///
/// * every attribute with `H(α) ≥ (1+ε)·η` is returned,
/// * no attribute with `H(α) < (1−ε)·η` is returned,
/// * attributes in the `[(1−ε)η, (1+ε)η)` band may go either way.
///
/// Each doubling iteration decides candidates by three cases: the interval
/// is narrower than `2εη` (decide by the point estimate `Ĥ ≷ η`), the
/// lower bound already clears `(1−ε)η` (accept), or the upper bound is
/// below `(1+ε)η` (reject). Expected cost is
/// `O(min{hN, h·log(h·log N/p_f)·log²N / (ε²·η²)})` (Theorem 4) —
/// depending on the user's threshold `η`, not on how close attribute
/// scores happen to sit to it.
///
/// # Errors
///
/// Fails fast on an invalid `ε`/`p_f`, an empty dataset, or a negative or
/// non-finite `η`.
pub fn entropy_filter(
    dataset: &Dataset,
    eta: f64,
    config: &SwopeConfig,
) -> Result<FilterResult, SwopeError> {
    entropy_filter_observed(dataset, eta, config, &mut NoopObserver)
}

/// [`entropy_filter`] with a [`QueryObserver`] attached.
///
/// Accept/reject decisions surface as `attr_retired` events; the result
/// is bitwise-identical to the unobserved call with the same config.
pub fn entropy_filter_observed<O: QueryObserver>(
    dataset: &Dataset,
    eta: f64,
    config: &SwopeConfig,
    observer: &mut O,
) -> Result<FilterResult, SwopeError> {
    entropy_filter_exec(dataset, eta, config, observer, &Executor::new(config.threads))
}

/// [`entropy_filter_observed`] with an injected [`Executor`].
///
/// See [`crate::exec`]: the executor supplies the (possibly shared)
/// worker pool, and results are bitwise identical for any executor.
pub fn entropy_filter_exec<O: QueryObserver>(
    dataset: &Dataset,
    eta: f64,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<FilterResult, SwopeError> {
    config.validate()?;
    if !eta.is_finite() || eta < 0.0 {
        return Err(SwopeError::InvalidThreshold(eta));
    }
    let h = dataset.num_attrs();
    let n = dataset.num_rows();
    if h == 0 || n == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    entropy_filter_run(dataset, eta, config, observer, exec, Population::unscoped(n, config))
}

/// The adaptive loop body, generic over the sampled population (see
/// [`crate::scope`]).
pub(crate) fn entropy_filter_run<O: QueryObserver>(
    dataset: &Dataset,
    eta: f64,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
    mut pop: Population,
) -> Result<FilterResult, SwopeError> {
    let h = dataset.num_attrs();
    let n = pop.n();
    let epsilon = config.epsilon;
    let p_f = config.resolve_p_f_rows(n);
    let m0 = config.resolve_m0_rows(dataset, n, p_f);
    let schedule = DoublingSchedule::new(n, m0);
    let p_prime = p_f / (schedule.i_max() as f64 * h as f64);

    let mut states: Vec<EntropyState> =
        (0..h).map(|attr| EntropyState::new(dataset, attr)).collect();
    pop.attach_covered(&mut states);
    let mut scratch = GatherScratch::new(h);
    let mut accepted: Vec<AttrScore> = Vec::new();
    let mut it = Instrumented::start(observer, QueryKind::EntropyFilter, h, n, config);
    it.setup(pop.setup_rows(), pop.setup_nanos());

    let mut converged_early = false;
    let mut m_target = schedule.m0();
    while !states.is_empty() {
        it.begin_iteration();
        let span = it.phase_start();
        let (delta_range, covered_k) = pop.grow(m_target);
        it.phase_end(Phase::SampleGrow, span);
        let m = pop.sampled();
        let delta = &pop.rows()[delta_range];
        let live = states.len();
        it.iteration(m, live, swope_estimate::bounds::lambda(m as u64, n as u64, p_prime));
        it.record_work(delta.len(), live, WorkKind::EntropyMarginals);

        let span = it.phase_start();
        exec.for_each2(&mut states, scratch.slots(live), |st, buf| {
            st.ingest_covered(covered_k);
            st.ingest_staged(dataset.column(st.attr), delta, buf);
        });
        it.phase_end(Phase::Ingest, span);
        let span = it.phase_start();
        exec.for_each_mut(&mut states, |st| {
            st.update_bounds(n as u64, p_prime);
        });
        it.phase_end(Phase::UpdateBounds, span);

        // Decide candidates (Alg. 2 lines 6-14).
        let span = it.phase_start();
        states.retain(|st| {
            let b = &st.bounds;
            if b.width() < 2.0 * epsilon * eta {
                // Tight enough: decide by the point estimate.
                let iter = it.attr_retired(st.attr, b.lower, b.upper);
                if b.point_estimate() >= eta {
                    accepted.push(attr_score(dataset, st, iter));
                }
                false
            } else if b.lower >= (1.0 - epsilon) * eta {
                let iter = it.attr_retired(st.attr, b.lower, b.upper);
                accepted.push(attr_score(dataset, st, iter));
                false
            } else if b.upper >= (1.0 + epsilon) * eta {
                true
            } else {
                it.attr_retired(st.attr, b.lower, b.upper);
                false
            }
        });

        if states.is_empty() {
            converged_early = m < n;
            it.phase_end(Phase::Decide, span);
            break;
        }
        if m >= n {
            // Bounds are exact (width 0); the only way candidates survive
            // here is εη = 0, where case 2 already accepted everything with
            // lower ≥ 0. Decide any stragglers by the exact value.
            for st in states.drain(..) {
                let iter = it.attr_retired(st.attr, st.bounds.lower, st.bounds.upper);
                if st.sample_entropy() >= eta {
                    accepted.push(attr_score(dataset, &st, iter));
                }
            }
            it.phase_end(Phase::Decide, span);
            break;
        }
        it.phase_end(Phase::Decide, span);
        m_target = (m * 2).min(n);
    }

    accepted.sort_by(|a, b| {
        b.estimate
            .partial_cmp(&a.estimate)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.attr.cmp(&b.attr))
    });
    Ok(FilterResult { accepted, stats: it.finish(converged_early) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use swope_columnar::{Column, Field, Schema};
    use swope_estimate::entropy::column_entropy;

    fn cyclic_dataset(n: usize, supports: &[u32]) -> Dataset {
        let fields =
            supports.iter().enumerate().map(|(i, &u)| Field::new(format!("c{i}"), u)).collect();
        let columns = supports
            .iter()
            .map(|&u| Column::new((0..n).map(|r| (r as u32 * 7 + u) % u).collect(), u).unwrap())
            .collect();
        Dataset::new(Schema::new(fields), columns).unwrap()
    }

    fn config() -> SwopeConfig {
        SwopeConfig { epsilon: 0.05, ..SwopeConfig::default() }
    }

    #[test]
    fn accepts_high_rejects_low() {
        // Entropies ~ log2(u): 1, 3, 5, 7 bits. Threshold 4: accept c2, c3.
        let ds = cyclic_dataset(50_000, &[2, 8, 32, 128]);
        let r = entropy_filter(&ds, 4.0, &config()).unwrap();
        let mut names: Vec<&str> = r.accepted.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["c2", "c3"]);
    }

    #[test]
    fn threshold_zero_accepts_everything() {
        let ds = cyclic_dataset(1_000, &[2, 8]);
        let r = entropy_filter(&ds, 0.0, &config()).unwrap();
        assert_eq!(r.accepted.len(), 2);
    }

    #[test]
    fn threshold_above_all_scores_accepts_nothing() {
        let ds = cyclic_dataset(10_000, &[2, 8, 32]);
        let r = entropy_filter(&ds, 20.0, &config()).unwrap();
        assert!(r.accepted.is_empty());
        // Rejecting by upper bound should happen fast.
        assert!(r.stats.converged_early);
    }

    #[test]
    fn definition6_compliance_against_exact_scores() {
        let ds = cyclic_dataset(20_000, &[2, 4, 8, 16, 32, 64, 128]);
        let eta = 3.5;
        let eps = 0.05;
        let cfg = SwopeConfig { epsilon: eps, ..SwopeConfig::default() };
        let r = entropy_filter(&ds, eta, &cfg).unwrap();
        for attr in 0..ds.num_attrs() {
            let exact = column_entropy(ds.column(attr));
            let included = r.contains(attr);
            if exact >= (1.0 + eps) * eta {
                assert!(included, "attr {attr} (H={exact}) must be accepted");
            }
            if exact < (1.0 - eps) * eta {
                assert!(!included, "attr {attr} (H={exact}) must be rejected");
            }
        }
    }

    #[test]
    fn results_sorted_by_estimate_descending() {
        let ds = cyclic_dataset(20_000, &[64, 8, 128, 32]);
        let r = entropy_filter(&ds, 2.0, &config()).unwrap();
        for w in r.accepted.windows(2) {
            assert!(w[0].estimate >= w[1].estimate);
        }
    }

    #[test]
    fn invalid_threshold_rejected() {
        let ds = cyclic_dataset(100, &[2]);
        assert!(matches!(
            entropy_filter(&ds, -1.0, &config()),
            Err(SwopeError::InvalidThreshold(_))
        ));
        assert!(matches!(
            entropy_filter(&ds, f64::NAN, &config()),
            Err(SwopeError::InvalidThreshold(_))
        ));
        assert!(matches!(
            entropy_filter(&ds, f64::INFINITY, &config()),
            Err(SwopeError::InvalidThreshold(_))
        ));
    }

    #[test]
    fn empty_dataset_rejected() {
        let schema = Schema::new(vec![Field::new("a", 2)]);
        let ds = Dataset::new(schema, vec![Column::new(vec![], 2).unwrap()]).unwrap();
        assert!(matches!(entropy_filter(&ds, 1.0, &config()), Err(SwopeError::EmptyDataset)));
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = cyclic_dataset(30_000, &[2, 8, 32, 128]);
        let c = config().with_seed(42);
        assert_eq!(entropy_filter(&ds, 3.0, &c).unwrap(), entropy_filter(&ds, 3.0, &c).unwrap());
    }

    #[test]
    fn parallel_matches_sequential() {
        let ds = cyclic_dataset(30_000, &[2, 8, 32, 128, 16]);
        let seq = entropy_filter(&ds, 3.0, &config().with_seed(5)).unwrap();
        let par = entropy_filter(&ds, 3.0, &config().with_seed(5).with_threads(4)).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn tiny_dataset_exact_path() {
        let ds = cyclic_dataset(16, &[2, 8]);
        let r = entropy_filter(&ds, 1.5, &config()).unwrap();
        // c1 has entropy 3 bits on 16 cyclic rows; c0 has 1 bit.
        assert_eq!(r.attr_indices(), vec![1]);
    }
}
