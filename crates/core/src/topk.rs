//! Algorithm 1: SWOPE approximate top-k on empirical entropy.

use swope_columnar::Dataset;
use swope_estimate::bounds::lambda;
use swope_obs::{NoopObserver, Phase, QueryKind, QueryObserver};
use swope_sampling::DoublingSchedule;

use crate::exec::Executor;
use crate::observe::Instrumented;
use crate::report::{AttrScore, TopKResult, WorkKind};
use crate::scope::Population;
use crate::state::{EntropyState, GatherScratch};
use crate::{SwopeConfig, SwopeError};

/// Approximate top-k query on empirical entropy (paper Algorithm 1).
///
/// Returns the `k` attributes with the highest *estimated* empirical
/// entropy such that, with probability at least `1 − p_f` (Definition 5):
///
/// 1. each returned attribute's estimate is at least `(1−ε)` times its
///    exact empirical entropy, and
/// 2. the exact entropy of the i-th returned attribute is at least
///    `(1−ε)` times the true i-th largest entropy.
///
/// The sample doubles each iteration starting from the paper's `M0`; the
/// query stops as soon as
/// `(H̄(α'_k) − 2λ − b_max) / H̄(α'_k) ≥ 1 − ε`, where `α'_k` has the k-th
/// largest upper bound and `b_max` is the largest bias term among the
/// current top-k. Expected cost is
/// `O(min{hN, h·log(h·log N/p_f)·log²N / (ε²·H²(α*_k))})` (Theorem 2).
///
/// # Errors
///
/// Fails fast (before sampling) on an invalid `ε`/`p_f`, an empty dataset,
/// or `k` outside `1..=h`.
pub fn entropy_top_k(
    dataset: &Dataset,
    k: usize,
    config: &SwopeConfig,
) -> Result<TopKResult, SwopeError> {
    entropy_top_k_observed(dataset, k, config, &mut NoopObserver)
}

/// [`entropy_top_k`] with a [`QueryObserver`] attached.
///
/// The observer receives the query lifecycle (`query_start`, one
/// `iteration` + phase spans per doubling round, one `attr_retired` per
/// candidate, `query_end`); the returned result is bitwise-identical to
/// the unobserved call with the same config.
pub fn entropy_top_k_observed<O: QueryObserver>(
    dataset: &Dataset,
    k: usize,
    config: &SwopeConfig,
    observer: &mut O,
) -> Result<TopKResult, SwopeError> {
    entropy_top_k_exec(dataset, k, config, observer, &Executor::new(config.threads))
}

/// [`entropy_top_k_observed`] with an injected [`Executor`].
///
/// The executor supplies the worker pool for per-candidate fan-outs;
/// `swope-server` passes a process-wide pool here so HTTP requests don't
/// pay per-query thread spawns. Results are bitwise identical for any
/// executor (see [`crate::exec`] for the determinism argument).
pub fn entropy_top_k_exec<O: QueryObserver>(
    dataset: &Dataset,
    k: usize,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<TopKResult, SwopeError> {
    config.validate()?;
    let h = dataset.num_attrs();
    let n = dataset.num_rows();
    if h == 0 || n == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    if k == 0 || k > h {
        return Err(SwopeError::InvalidK { k, candidates: h });
    }
    entropy_top_k_run(dataset, k, config, observer, exec, Population::unscoped(n, config))
}

/// The adaptive loop body, generic over the sampled population. Unscoped
/// queries pass [`Population::unscoped`] (exactly the pre-scope
/// behavior); scoped queries pass a range-, predicate-, or
/// hybrid-sampled population with `n = n_s`.
pub(crate) fn entropy_top_k_run<O: QueryObserver>(
    dataset: &Dataset,
    k: usize,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
    mut pop: Population,
) -> Result<TopKResult, SwopeError> {
    let h = dataset.num_attrs();
    let n = pop.n();
    let epsilon = config.epsilon;
    let p_f = config.resolve_p_f_rows(n);
    let m0 = config.resolve_m0_rows(dataset, n, p_f);
    let schedule = DoublingSchedule::new(n, m0);
    // Union-bound budget: bounds are applied to at most h attributes in
    // each of at most i_max iterations (Theorem 1's proof).
    let p_prime = p_f / (schedule.i_max() as f64 * h as f64);

    let mut states: Vec<EntropyState> =
        (0..h).map(|attr| EntropyState::new(dataset, attr)).collect();
    pop.attach_covered(&mut states);
    let mut scratch = GatherScratch::new(h);
    let mut it = Instrumented::start(observer, QueryKind::EntropyTopK, h, n, config);
    it.setup(pop.setup_rows(), pop.setup_nanos());

    let mut m_target = schedule.m0();
    loop {
        it.begin_iteration();
        let span = it.phase_start();
        let (delta_range, covered_k) = pop.grow(m_target);
        it.phase_end(Phase::SampleGrow, span);
        let m = pop.sampled();
        let delta = &pop.rows()[delta_range];
        let lam = lambda(m as u64, n as u64, p_prime);
        let live = states.len();
        it.iteration(m, live, lam);
        it.record_work(delta.len(), live, WorkKind::EntropyMarginals);

        let span = it.phase_start();
        exec.for_each2(&mut states, scratch.slots(live), |st, buf| {
            st.ingest_covered(covered_k);
            st.ingest_staged(dataset.column(st.attr), delta, buf);
        });
        it.phase_end(Phase::Ingest, span);
        let span = it.phase_start();
        exec.for_each_mut(&mut states, |st| {
            st.update_bounds(n as u64, p_prime);
        });
        it.phase_end(Phase::UpdateBounds, span);

        let span = it.phase_start();
        // R <- top-k attributes by upper bound (Alg. 1 lines 5-7).
        let by_upper = top_k_indices(&states, k, |st| st.bounds.upper);
        let kth_upper = states[by_upper[k - 1]].bounds.upper;
        let b_max = by_upper.iter().map(|&i| states[i].bounds.bias).fold(0.0f64, f64::max);

        // Stopping rule (Alg. 1 line 8).
        let stop = kth_upper > 0.0 && (kth_upper - 2.0 * lam - b_max) / kth_upper >= 1.0 - epsilon;
        if stop || m >= n {
            it.phase_end(Phase::Decide, span);
            // Everything still alive leaves the race now, returned or not.
            for st in &states {
                it.attr_retired(st.attr, st.bounds.lower, st.bounds.upper);
            }
            let retired_iteration = it.current_iteration();
            let top = by_upper
                .iter()
                .map(|&i| attr_score(dataset, &states[i], retired_iteration))
                .collect();
            let converged_early = stop && m < n;
            return Ok(TopKResult { top, stats: it.finish(converged_early) });
        }

        // Prune candidates that cannot reach the top-k (lines 14-17):
        // drop α with H̄(α) below the k-th largest lower bound.
        let by_lower = top_k_indices(&states, k, |st| st.bounds.lower);
        let kth_lower = states[by_lower[k - 1]].bounds.lower;
        states.retain(|st| {
            let keep = st.bounds.upper >= kth_lower;
            if !keep {
                it.attr_retired(st.attr, st.bounds.lower, st.bounds.upper);
            }
            keep
        });
        it.phase_end(Phase::Decide, span);

        m_target = (m * 2).min(n);
    }
}

/// Indices of the `k` states with the largest `key`, sorted descending.
/// Ties break toward the lower attribute index for determinism.
pub(crate) fn top_k_indices<T>(states: &[T], k: usize, key: impl Fn(&T) -> f64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..states.len()).collect();
    order.sort_by(|&a, &b| {
        key(&states[b])
            .partial_cmp(&key(&states[a]))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order.truncate(k);
    order
}

pub(crate) fn attr_score(
    dataset: &Dataset,
    st: &EntropyState,
    retired_iteration: usize,
) -> AttrScore {
    AttrScore {
        attr: st.attr,
        name: dataset.schema().field(st.attr).map(|f| f.name().to_owned()).unwrap_or_default(),
        estimate: st.bounds.point_estimate(),
        lower: st.bounds.lower,
        upper: st.bounds.upper,
        retired_iteration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swope_columnar::{Column, Field, Schema};

    /// A dataset whose entropy ranking is unambiguous: column `i` cycles
    /// through `supports[i]` values, giving entropy ~log2(supports[i]).
    fn cyclic_dataset(n: usize, supports: &[u32]) -> Dataset {
        let fields =
            supports.iter().enumerate().map(|(i, &u)| Field::new(format!("c{i}"), u)).collect();
        let columns = supports
            .iter()
            .map(|&u| {
                Column::new(
                    (0..n)
                        .map(|r| (r as u32).wrapping_mul(2654435761u32.wrapping_add(u)) % u)
                        .collect(),
                    u,
                )
                .unwrap()
            })
            .collect();
        Dataset::new(Schema::new(fields), columns).unwrap()
    }

    fn config() -> SwopeConfig {
        SwopeConfig { epsilon: 0.1, ..SwopeConfig::default() }
    }

    #[test]
    fn finds_highest_entropy_attribute() {
        let ds = cyclic_dataset(20_000, &[2, 64, 4, 8]);
        let r = entropy_top_k(&ds, 1, &config()).unwrap();
        assert_eq!(r.top.len(), 1);
        assert_eq!(r.top[0].name, "c1");
        assert!(r.top[0].estimate > 5.0, "estimate {}", r.top[0].estimate);
    }

    #[test]
    fn returns_k_attributes_in_upper_bound_order() {
        let ds = cyclic_dataset(20_000, &[2, 64, 4, 256, 16]);
        let r = entropy_top_k(&ds, 3, &config()).unwrap();
        let names: Vec<&str> = r.top.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["c3", "c1", "c4"]);
        for w in r.top.windows(2) {
            assert!(w[0].upper >= w[1].upper);
        }
    }

    #[test]
    fn k_equals_h_returns_everything() {
        let ds = cyclic_dataset(5_000, &[2, 8, 32]);
        let r = entropy_top_k(&ds, 3, &config()).unwrap();
        assert_eq!(r.top.len(), 3);
    }

    #[test]
    fn validation_errors() {
        let ds = cyclic_dataset(100, &[2, 4]);
        assert!(matches!(entropy_top_k(&ds, 0, &config()), Err(SwopeError::InvalidK { .. })));
        assert!(matches!(entropy_top_k(&ds, 3, &config()), Err(SwopeError::InvalidK { .. })));
        assert!(matches!(
            entropy_top_k(&ds, 1, &SwopeConfig::with_epsilon(2.0)),
            Err(SwopeError::InvalidEpsilon(_))
        ));
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let schema = Schema::new(vec![Field::new("a", 2)]);
        let ds = Dataset::new(schema, vec![Column::new(vec![], 2).unwrap()]).unwrap();
        assert!(matches!(entropy_top_k(&ds, 1, &config()), Err(SwopeError::EmptyDataset)));
    }

    #[test]
    fn bounds_bracket_estimates() {
        let ds = cyclic_dataset(10_000, &[4, 16, 64]);
        let r = entropy_top_k(&ds, 2, &config()).unwrap();
        for s in &r.top {
            assert!(s.lower <= s.estimate && s.estimate <= s.upper);
        }
    }

    #[test]
    fn converges_early_on_large_easy_input() {
        // Large N, high k-th entropy: the stopping rule should fire long
        // before a full scan.
        let ds = cyclic_dataset(200_000, &[64, 128, 2, 4]);
        let r = entropy_top_k(&ds, 2, &config()).unwrap();
        assert!(r.stats.converged_early, "stats: {:?}", r.stats);
        assert!(r.stats.sample_size < 200_000);
    }

    #[test]
    fn exact_fallback_on_tiny_input() {
        // Tiny N: the query degenerates to an exact scan and still returns
        // the correct ranking.
        let ds = cyclic_dataset(64, &[2, 16]);
        let r = entropy_top_k(&ds, 1, &config()).unwrap();
        assert_eq!(r.top[0].name, "c1");
        assert_eq!(r.stats.sample_size, 64);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = cyclic_dataset(50_000, &[2, 8, 32, 128]);
        let c = config().with_seed(99);
        let a = entropy_top_k(&ds, 2, &c).unwrap();
        let b = entropy_top_k(&ds, 2, &c).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_sequential() {
        let ds = cyclic_dataset(50_000, &[2, 8, 32, 128, 16, 64]);
        let seq = entropy_top_k(&ds, 3, &config().with_seed(5)).unwrap();
        let par = entropy_top_k(&ds, 3, &config().with_seed(5).with_threads(4)).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn page_sampling_strategy_works() {
        let mut c = config();
        c.sampling = crate::SamplingStrategy::Page { page_rows: 256, seed: 1 };
        let ds = cyclic_dataset(50_000, &[2, 64, 8]);
        let r = entropy_top_k(&ds, 1, &c).unwrap();
        assert_eq!(r.top[0].name, "c1");
    }

    #[test]
    fn top_k_indices_orders_and_breaks_ties() {
        let vals = [3.0f64, 9.0, 9.0, 1.0];
        let idx = top_k_indices(&vals, 3, |&v| v);
        assert_eq!(idx, vec![1, 2, 0]);
    }
}
