//! Persistent execution layer for the adaptive loops.
//!
//! Every SWOPE iteration fans the same shape of work out over the live
//! candidate states: ingest the ΔM newly sampled rows, then recompute
//! bounds. The original [`crate::parallel::for_each_mut`] paid a fresh
//! `thread::scope` spawn/join for every one of those fan-outs — tens of
//! microseconds per iteration that dwarf the actual counting work once
//! the candidate set shrinks. This module replaces that with:
//!
//! * [`ExecPool`] — a persistent pool of parked worker threads created
//!   once per query (or once per process for `swope-server`, shared via
//!   `Arc`). Dispatching a fan-out is a mutex/condvar wake, not a spawn.
//! * dynamic chunking — workers claim index ranges from an atomic cursor
//!   instead of receiving one static shard each, so unevenly-retiring
//!   candidates no longer straggle a single shard.
//! * [`Executor`] — the handle the loops program against. It is either
//!   sequential (no pool, zero overhead) or pooled, and it is `Clone`
//!   (clones share the same pool).
//!
//! # Determinism
//!
//! Parallel fan-outs stay bitwise identical to the sequential path for
//! any worker count because the unit of work is one *whole item*: each
//! item is claimed by exactly one worker and processed exactly once, and
//! every per-item closure touches only that item's state, in delta order.
//! Which worker runs an item — and in what interleaving — cannot affect
//! the item's final bits. Cross-item reductions (argmax, pruning, output
//! ordering) remain serial in the loops.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Each worker claims roughly this many chunks per dispatch, so faster
/// workers can absorb slack from slower ones without the cursor becoming
/// a contention point. 4 keeps chunks ≥ a quarter-shard: large enough
/// that `fetch_add` traffic is negligible next to the counting work.
const CHUNKS_PER_WORKER: usize = 4;

/// Type-erased pointer to the current dispatch's task closure.
///
/// The pointee only lives for the duration of [`ExecPool::run`], which
/// blocks until every worker has finished executing it, so handing the
/// (lifetime-erased) pointer to the workers is sound.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` (shared execution is the point) and
// `run` keeps it alive until all workers are done with it.
unsafe impl Send for JobPtr {}

/// Raw base pointer of a slice being fanned out across workers.
///
/// Shared by reference with every worker; soundness comes from the
/// dispatch protocol, not the type: the atomic cursor hands each index
/// to exactly one worker, so the derived `&mut` references are disjoint.
struct SendPtr<T>(*mut T);

// SAFETY: see the struct docs — disjoint index claims make concurrent
// `&mut` derivation from the shared base pointer sound.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Mutex-guarded pool state; the condvar protocol keys off `epoch`.
struct PoolState {
    /// The task of the in-flight dispatch, if any.
    job: Option<JobPtr>,
    /// Bumped once per dispatch; workers run the job when it changes.
    epoch: u64,
    /// Workers still executing the current job.
    active: usize,
    /// Set when a worker's task panicked (the leader re-raises).
    panicked: bool,
    /// Set by `Drop`; workers exit their loop.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signals workers that `epoch` moved (or `shutdown` was set).
    work_ready: Condvar,
    /// Signals the leader that `active` reached zero.
    work_done: Condvar,
    dispatches: AtomicU64,
    chunks: AtomicU64,
    items: AtomicU64,
}

/// A persistent pool of parked worker threads for per-item fan-outs.
///
/// Created once per query (see [`Executor::new`]) or once per process
/// (`swope-server` wraps one in an `Arc` and shares it across requests).
/// `parallelism` counts the dispatching thread: a pool of parallelism
/// `t` spawns `t − 1` background workers and the leader participates in
/// every dispatch. Dropping the pool parks no one forever — workers are
/// woken, drained, and joined.
pub struct ExecPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes dispatches: the pool runs one fan-out at a time, so
    /// concurrent server queries sharing a pool queue behind this lock
    /// rather than corrupting the epoch protocol.
    dispatch: Mutex<()>,
    parallelism: usize,
}

/// A point-in-time snapshot of a pool's lifetime counters, exported by
/// `swope-server` under `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Total threads participating in dispatches (workers + leader).
    pub workers: usize,
    /// Fan-outs dispatched (one per parallel `for_each` call).
    pub dispatches: u64,
    /// Chunks claimed from dispatch cursors (≥ dispatches).
    pub chunks: u64,
    /// Items processed across all dispatches.
    pub items: u64,
}

impl ExecPool {
    /// Spawns a pool of total parallelism `parallelism` (clamped to ≥ 2;
    /// use [`Executor::sequential`] when you don't want threads at all).
    pub fn new(parallelism: usize) -> Self {
        let parallelism = parallelism.max(2);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                active: 0,
                panicked: false,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
            dispatches: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
            items: AtomicU64::new(0),
        });
        let handles = (0..parallelism - 1)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("swope-exec-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning exec worker thread")
            })
            .collect();
        Self { shared, handles, dispatch: Mutex::new(()), parallelism }
    }

    /// Total threads participating in dispatches (workers + leader).
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Snapshot of the pool's lifetime dispatch counters.
    pub fn stats(&self) -> ExecStats {
        ExecStats {
            workers: self.parallelism,
            dispatches: self.shared.dispatches.load(Ordering::Relaxed),
            chunks: self.shared.chunks.load(Ordering::Relaxed),
            items: self.shared.items.load(Ordering::Relaxed),
        }
    }

    /// Runs `per_index` for every index in `0..len`, fanned out across
    /// the pool with dynamic chunking. Blocks until all indices are done.
    fn dispatch<F>(&self, len: usize, per_index: F)
    where
        F: Fn(usize) + Sync,
    {
        if len == 0 {
            return;
        }
        self.shared.dispatches.fetch_add(1, Ordering::Relaxed);
        self.shared.items.fetch_add(len as u64, Ordering::Relaxed);
        let chunk = (len / (self.parallelism * CHUNKS_PER_WORKER)).max(1);
        let cursor = AtomicUsize::new(0);
        let task = || loop {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= len {
                break;
            }
            self.shared.chunks.fetch_add(1, Ordering::Relaxed);
            let end = (start + chunk).min(len);
            for i in start..end {
                per_index(i);
            }
        };
        self.run(&task);
    }

    /// Wakes the workers on `task`, participates as the leader, and
    /// blocks until every worker has finished the dispatch.
    fn run(&self, task: &(dyn Fn() + Sync)) {
        // A panicked dispatch unwinds through this frame and poisons the
        // lock; the epoch protocol stays consistent (the panicked run
        // still waited for its workers), so recover rather than wedge.
        let _serialize = self.dispatch.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        // SAFETY: lifetime erasure only — we block below until `active`
        // returns to zero, so no worker touches `task` after this frame.
        let job = JobPtr(unsafe {
            std::mem::transmute::<*const (dyn Fn() + Sync), *const (dyn Fn() + Sync + 'static)>(
                task,
            )
        });
        {
            let mut st = self.shared.state.lock().expect("exec state lock poisoned");
            st.job = Some(job);
            st.epoch += 1;
            st.active = self.handles.len();
            st.panicked = false;
        }
        self.shared.work_ready.notify_all();
        // The leader runs the same claim loop; a panic here must still
        // wait for the workers (they hold references into the frame).
        let leader = catch_unwind(AssertUnwindSafe(task));
        let worker_panicked = {
            let mut st = self.shared.state.lock().expect("exec state lock poisoned");
            while st.active > 0 {
                st = self.shared.work_done.wait(st).expect("exec state lock poisoned");
            }
            st.job = None;
            st.panicked
        };
        if let Err(payload) = leader {
            resume_unwind(payload);
        }
        assert!(!worker_panicked, "exec worker task panicked");
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("exec state lock poisoned");
            st.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("exec state lock poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.job.expect("dispatch epoch advanced without a job");
                }
                st = shared.work_ready.wait(st).expect("exec state lock poisoned");
            }
        };
        // SAFETY: `run` keeps the pointee alive until `active` drops to
        // zero, which only happens after this call returns.
        let task = unsafe { &*job.0 };
        let outcome = catch_unwind(AssertUnwindSafe(task));
        let mut st = shared.state.lock().expect("exec state lock poisoned");
        if outcome.is_err() {
            st.panicked = true;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.work_done.notify_all();
        }
    }
}

/// The execution handle the adaptive loops program against.
///
/// Either sequential (plain loop, no threads, no overhead) or backed by
/// a shared [`ExecPool`]. Cloning is cheap and clones share the pool, so
/// `swope-server` hands one process-wide executor to every request.
///
/// An executor may additionally carry a trace binding
/// ([`with_trace`](Self::with_trace)): each pooled dispatch then records
/// an `exec_dispatch` span into the bound sink. Sequential fan-outs and
/// unbound executors never touch a clock.
#[derive(Clone)]
pub struct Executor {
    pool: Option<Arc<ExecPool>>,
    trace: Option<ExecTrace>,
}

#[derive(Clone)]
struct ExecTrace {
    sink: Arc<swope_obs::trace::SpanSink>,
    parent: u32,
}

impl ExecTrace {
    fn dispatch_span(&self, start_ns: u64, items: usize) {
        self.sink.record(
            "exec_dispatch",
            Some(self.parent),
            start_ns,
            self.sink.now_ns(),
            0,
            items as u64,
        );
    }
}

impl Executor {
    /// An executor that runs everything inline on the calling thread.
    pub fn sequential() -> Self {
        Self { pool: None, trace: None }
    }

    /// An executor of total parallelism `threads`: sequential when
    /// `threads <= 1`, otherwise backed by a fresh [`ExecPool`].
    pub fn new(threads: usize) -> Self {
        if threads <= 1 {
            Self::sequential()
        } else {
            Self { pool: Some(Arc::new(ExecPool::new(threads))), trace: None }
        }
    }

    /// An executor sharing an existing pool (the server injection path).
    pub fn pooled(pool: Arc<ExecPool>) -> Self {
        Self { pool: Some(pool), trace: None }
    }

    /// Binds a trace sink: every subsequent pooled dispatch through this
    /// executor (or its clones) records an `exec_dispatch` span under
    /// `parent`. Purely observational — scheduling and results are
    /// unchanged, which `core/tests/trace_invariance.rs` enforces.
    pub fn with_trace(mut self, sink: Arc<swope_obs::trace::SpanSink>, parent: u32) -> Self {
        self.trace = Some(ExecTrace { sink, parent });
        self
    }

    /// Total threads a fan-out may use (1 for sequential executors).
    pub fn parallelism(&self) -> usize {
        self.pool.as_ref().map_or(1, |p| p.parallelism())
    }

    /// Snapshot of the backing pool's counters (zeros when sequential).
    pub fn stats(&self) -> ExecStats {
        self.pool.as_ref().map_or(ExecStats { workers: 1, ..ExecStats::default() }, |p| p.stats())
    }

    /// Applies `f` to every element of `items` exactly once.
    ///
    /// Zero- and one-item calls never touch the pool; larger slices are
    /// fanned out with dynamic chunking. Results are bitwise identical
    /// to the sequential loop for any parallelism (see module docs).
    pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(&mut T) + Sync,
    {
        let len = items.len();
        if len > 1 {
            if let Some(pool) = &self.pool {
                let start_ns = self.trace.as_ref().map(|t| t.sink.now_ns());
                let base = SendPtr(items.as_mut_ptr());
                pool.dispatch(len, |i| {
                    // SAFETY: each index is claimed exactly once, so the
                    // derived `&mut` references are disjoint; `dispatch`
                    // blocks until every claim completes.
                    f(unsafe { &mut *base.get().add(i) });
                });
                if let (Some(t), Some(start)) = (&self.trace, start_ns) {
                    t.dispatch_span(start, len);
                }
                return;
            }
        }
        for item in items.iter_mut() {
            f(item);
        }
    }

    /// Applies `f` to every `(a[i], b[i])` pair exactly once; the slices
    /// must have equal lengths. Used to pair each candidate state with
    /// its private gather buffer in the staged ingest path.
    pub fn for_each2<A, B, F>(&self, a: &mut [A], b: &mut [B], f: F)
    where
        A: Send,
        B: Send,
        F: Fn(&mut A, &mut B) + Sync,
    {
        assert_eq!(a.len(), b.len(), "for_each2 slices must have equal lengths");
        let len = a.len();
        if len > 1 {
            if let Some(pool) = &self.pool {
                let start_ns = self.trace.as_ref().map(|t| t.sink.now_ns());
                let pa = SendPtr(a.as_mut_ptr());
                let pb = SendPtr(b.as_mut_ptr());
                pool.dispatch(len, |i| {
                    // SAFETY: as in `for_each_mut`; the two slices are
                    // distinct borrows, so pair `i` is touched once.
                    f(unsafe { &mut *pa.get().add(i) }, unsafe { &mut *pb.get().add(i) });
                });
                if let (Some(t), Some(start)) = (&self.trace, start_ns) {
                    t.dispatch_span(start, len);
                }
                return;
            }
        }
        for (x, y) in a.iter_mut().zip(b.iter_mut()) {
            f(x, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn sequential_executor_applies_all() {
        let exec = Executor::sequential();
        let mut items = vec![1u64, 2, 3];
        exec.for_each_mut(&mut items, |x| *x *= 10);
        assert_eq!(items, vec![10, 20, 30]);
        assert_eq!(exec.parallelism(), 1);
        assert_eq!(exec.stats().dispatches, 0);
    }

    #[test]
    fn pooled_executor_applies_all_exactly_once() {
        let exec = Executor::new(4);
        let mut items: Vec<u64> = (0..1000).collect();
        let calls = AtomicUsize::new(0);
        exec.for_each_mut(&mut items, |x| {
            *x += 1;
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        for (i, &v) in items.iter().enumerate() {
            assert_eq!(v, i as u64 + 1);
        }
    }

    #[test]
    fn zero_items_do_not_dispatch() {
        let exec = Executor::new(3);
        let mut items: Vec<i32> = vec![];
        exec.for_each_mut(&mut items, |_| panic!("must not be called"));
        assert_eq!(exec.stats().dispatches, 0);
    }

    #[test]
    fn single_item_runs_inline_without_dispatch() {
        let exec = Executor::new(3);
        let mut items = vec![5];
        exec.for_each_mut(&mut items, |x| *x = 7);
        assert_eq!(items, vec![7]);
        assert_eq!(exec.stats().dispatches, 0);
    }

    #[test]
    fn traced_executor_records_dispatch_spans() {
        use swope_obs::trace::{SpanSink, TraceId};
        let sink = SpanSink::new(TraceId(7));
        let root = sink.open_at("request", None, 0);
        let exec = Executor::new(3).with_trace(Arc::clone(&sink), root);
        let mut items: Vec<u64> = (0..100).collect();
        exec.for_each_mut(&mut items, |x| *x += 1);
        let mut single = vec![9u64];
        exec.for_each_mut(&mut single, |x| *x += 1); // inline: no span
        let (spans, _) = sink.drain();
        let dispatches: Vec<_> = spans.iter().filter(|s| s.name == "exec_dispatch").collect();
        assert_eq!(dispatches.len(), 1);
        assert_eq!(dispatches[0].parent, Some(root));
        assert_eq!(dispatches[0].items, 100);
        assert!(dispatches[0].end_ns >= dispatches[0].start_ns);
    }

    #[test]
    fn fewer_items_than_workers_is_fine() {
        let exec = Executor::new(8);
        let mut items = vec![1u32, 2, 3];
        exec.for_each_mut(&mut items, |x| *x += 100);
        assert_eq!(items, vec![101, 102, 103]);
    }

    #[test]
    fn pool_is_reused_across_dispatches() {
        let exec = Executor::new(3);
        let mut items: Vec<u64> = (0..64).collect();
        for _ in 0..100 {
            exec.for_each_mut(&mut items, |x| *x = x.wrapping_mul(3) + 1);
        }
        let mut expected: Vec<u64> = (0..64).collect();
        for _ in 0..100 {
            for x in expected.iter_mut() {
                *x = x.wrapping_mul(3) + 1;
            }
        }
        assert_eq!(items, expected);
        let stats = exec.stats();
        assert_eq!(stats.dispatches, 100);
        assert_eq!(stats.items, 6400);
        assert!(stats.chunks >= stats.dispatches);
    }

    #[test]
    fn results_match_sequential_for_any_parallelism() {
        for threads in [1usize, 2, 3, 7, 16] {
            let exec = Executor::new(threads);
            let mut par: Vec<u64> = (0..97).collect();
            let mut seq: Vec<u64> = (0..97).collect();
            exec.for_each_mut(&mut par, |x| *x = x.wrapping_mul(3) + 1);
            for x in seq.iter_mut() {
                *x = x.wrapping_mul(3) + 1;
            }
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn for_each2_pairs_by_index() {
        for threads in [1usize, 4] {
            let exec = Executor::new(threads);
            let mut a: Vec<u64> = (0..300).collect();
            let mut b: Vec<u64> = (0..300).map(|i| i * 2).collect();
            exec.for_each2(&mut a, &mut b, |x, y| {
                *y += *x;
                *x = 0;
            });
            assert!(a.iter().all(|&x| x == 0));
            for (i, &v) in b.iter().enumerate() {
                assert_eq!(v, i as u64 * 3, "threads = {threads}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn for_each2_rejects_mismatched_lengths() {
        let exec = Executor::sequential();
        exec.for_each2(&mut [1], &mut [1, 2], |_: &mut i32, _: &mut i32| {});
    }

    #[test]
    fn clones_share_the_pool_and_its_stats() {
        let exec = Executor::new(2);
        let clone = exec.clone();
        let mut items: Vec<u64> = (0..32).collect();
        exec.for_each_mut(&mut items, |x| *x += 1);
        clone.for_each_mut(&mut items, |x| *x += 1);
        assert_eq!(exec.stats().dispatches, 2);
        assert_eq!(clone.stats().dispatches, 2);
    }

    #[test]
    fn worker_panics_propagate_to_the_dispatcher() {
        let exec = Executor::new(2);
        let mut items: Vec<u64> = (0..128).collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            exec.for_each_mut(&mut items, |x| {
                assert!(*x != 64, "boom");
                *x += 1;
            });
        }));
        assert!(outcome.is_err());
        // The pool survives a panicked dispatch and keeps working.
        let mut more: Vec<u64> = (0..16).collect();
        exec.for_each_mut(&mut more, |x| *x += 1);
        assert_eq!(more, (1..17).collect::<Vec<u64>>());
    }
}
