//! Per-attribute incremental query state.
//!
//! The SWOPE algorithms (and the exact baselines built on the same bound
//! machinery) maintain, for every live candidate attribute, counters over
//! the sampled records plus the current confidence interval. This module
//! holds that state so `swope-core` and `swope-baselines` share one
//! implementation.
//!
//! The key performance property: [`EntropyState::ingest`] and
//! [`MiState::ingest`] accept only the **newly sampled** rows of an
//! iteration, so the total counting work over a whole query is
//! `O(candidates × final M)` — the quantity the paper's complexity
//! analysis bounds — rather than re-scanning the sample every iteration.
//!
//! Every ingest is **width-generic**: columns arrive width-packed
//! (`u8`/`u16`/`u32`, see [`swope_store::PackedColumn`]) and each public
//! ingest dispatches once per call via [`swope_store::for_packed!`] into
//! a monomorphized inner loop over the native code type — no per-row
//! branching, no widening until the counter update (a register
//! zero-extension). Gathered block buffers are [`CodeBuf`]s so scratch
//! stays at the column's width too: a `u8` column moves a quarter of the
//! bytes an unpacked gather would.
//!
//! Every ingest is also **canonically applied**: an ingest call first
//! accumulates its rows into a pure-integer delta histogram
//! ([`crate::shard::CountState`]; joint occurrences into a
//! [`crate::shard::PairCountState`]) and then drains the histogram into
//! the floating-point counters in ascending-code order. The counters'
//! running `f64` sums therefore see an update sequence that depends only
//! on the *multiset* of rows an ingest call covers, never on their
//! order — which is what lets the shard-parallel loops ([`crate::shard`])
//! count the same delta on any number of shards, merge the integer
//! histograms, and land on bitwise-identical results.

use swope_columnar::{AttrIndex, Code, CodeBuf, CodeRepr, Column, ColumnStorage, Dataset};
use swope_estimate::bounds::{entropy_bounds, mi_bounds, EntropyBounds, MiBounds};
use swope_estimate::entropy::EntropyCounter;
use swope_estimate::joint::JointEntropyCounter;
use swope_sampling::{PageShuffle, PrefixShuffle, Sampler};
use swope_store::{for_packed, gather};

use crate::scope::CoveredDist;
use crate::shard::{CountState, PairCountState};
use crate::SamplingStrategy;

/// Row-block granularity of the gather-staged ingest path.
///
/// Staged ingest splits an iteration's ΔM rows into blocks of this many
/// rows, gathers one block of a column's codes into a reusable buffer,
/// then counts the block sequentially. The block bound keeps every
/// scratch buffer at most `4 · INGEST_BLOCK_ROWS` bytes (32 KiB — L1/L2
/// resident; narrower columns use proportionally less) no matter how
/// large ΔM grows under doubling, which is what makes the steady-state
/// loop allocation-free: buffers reach block size once and are never
/// regrown. Matches the batch engine's block size.
pub const INGEST_BLOCK_ROWS: usize = 8192;

/// Reusable per-query scratch buffers for gather-staged ingest.
///
/// One `GatherScratch` lives for the whole adaptive loop: `target` holds
/// the MI target column's gathered codes for the current iteration
/// (always widened to `u32` — it is shared by every candidate, so it is
/// gathered once), and `slots[i]` is candidate state `i`'s private block
/// buffer (private so the executor can fan candidates out without
/// sharing buffers). A slot is a [`CodeBuf`], so it holds codes at
/// whatever width the candidate's column is packed at. All buffers grow
/// to their high-water mark once and are then reused, so steady-state
/// iterations allocate nothing.
#[derive(Debug, Default)]
pub struct GatherScratch {
    target: Vec<Code>,
    slots: Vec<CodeBuf>,
}

impl GatherScratch {
    /// Scratch with `slots` per-candidate block buffers (more are added
    /// on demand by [`GatherScratch::slots`]).
    pub fn new(slots: usize) -> Self {
        Self { target: Vec::new(), slots: (0..slots).map(|_| CodeBuf::new()).collect() }
    }

    /// The first `n` per-candidate block buffers, growing the slot list
    /// if needed. Pair with states via `Executor::for_each2`.
    pub fn slots(&mut self, n: usize) -> &mut [CodeBuf] {
        if self.slots.len() < n {
            self.slots.resize_with(n, CodeBuf::new);
        }
        &mut self.slots[..n]
    }

    /// Splits the scratch into the target-code buffer and the first `n`
    /// candidate slots, so an MI iteration can fill the target buffer
    /// and then fan candidates out over it in one borrow.
    pub fn target_and_slots(&mut self, n: usize) -> (&mut Vec<Code>, &mut [CodeBuf]) {
        if self.slots.len() < n {
            self.slots.resize_with(n, CodeBuf::new);
        }
        (&mut self.target, &mut self.slots[..n])
    }
}

/// Constructs the sampler a query's `SamplingStrategy` asks for.
pub fn make_sampler(num_rows: usize, strategy: SamplingStrategy) -> Box<dyn Sampler> {
    match strategy {
        SamplingStrategy::Row { seed } => Box::new(PrefixShuffle::new(num_rows, seed)),
        SamplingStrategy::Page { page_rows, seed } => {
            Box::new(PageShuffle::new(num_rows, page_rows, seed))
        }
    }
}

/// Incremental entropy-query state for one attribute.
#[derive(Debug, Clone)]
pub struct EntropyState {
    /// The attribute this state tracks.
    pub attr: AttrIndex,
    /// The attribute's support size `u_alpha`.
    pub support: u32,
    counter: EntropyCounter,
    delta: CountState,
    /// Covered-region code distribution of a scoped hybrid sample
    /// (see [`crate::scope`]); `None` for unscoped queries.
    covered: Option<CoveredDist>,
    /// Confidence interval from the most recent [`EntropyState::update_bounds`].
    pub bounds: EntropyBounds,
}

impl EntropyState {
    /// Creates state for attribute `attr` of `dataset`.
    pub fn new(dataset: &Dataset, attr: AttrIndex) -> Self {
        Self::with_support(attr, dataset.support(attr))
    }

    /// Creates state from the attribute's support alone — the shard
    /// engine's constructor, which holds attribute metadata but no local
    /// [`Dataset`].
    pub fn with_support(attr: AttrIndex, support: u32) -> Self {
        Self {
            attr,
            support,
            counter: EntropyCounter::new(support),
            delta: CountState::new(support),
            covered: None,
            bounds: EntropyBounds {
                sample_entropy: 0.0,
                lower: 0.0,
                upper: f64::INFINITY,
                lambda: f64::INFINITY,
                bias: f64::INFINITY,
            },
        }
    }

    /// Drains an externally accumulated delta histogram (one iteration's
    /// merged shard counts) into the counter in canonical code order —
    /// the exact apply the ingest paths use on their own deltas.
    pub fn apply_delta(&mut self, delta: &mut CountState) {
        delta.apply_to(&mut self.counter);
    }

    /// Attaches the covered-region code distribution of a scoped hybrid
    /// sample; [`EntropyState::ingest_covered`] draws from it.
    pub fn set_covered(&mut self, dist: CoveredDist) {
        self.covered = Some(dist);
    }

    /// Draws `k` covered-region records from the attached distribution
    /// into the counter (no-op without one, or when `k == 0`). Scoped
    /// hybrid iterations call this with the iteration's covered draw
    /// count before ingesting the physical fringe delta.
    #[inline]
    pub fn ingest_covered(&mut self, k: u64) {
        if k == 0 {
            return;
        }
        if let Some(dist) = &mut self.covered {
            dist.draw_into(&mut self.counter, k);
        }
    }

    /// Ingests newly sampled rows (O(Δrows)), applied canonically: the
    /// counter update depends only on the row multiset, not its order.
    /// Paged columns read through a page cursor — same codes in the same
    /// order, so the delta (and thus the counter) is bitwise identical.
    #[inline]
    pub fn ingest(&mut self, column: &Column, new_rows: &[u32]) {
        match column.storage() {
            ColumnStorage::Heap(packed) => {
                for_packed!(packed.codes(), |codes| self.ingest_repr(codes, new_rows))
            }
            ColumnStorage::Paged(paged) => {
                let mut cur = paged.cursor();
                for &r in new_rows {
                    self.delta.add(cur.code(r as usize));
                }
            }
        }
        self.delta.apply_to(&mut self.counter);
    }

    #[inline]
    fn ingest_repr<R: CodeRepr>(&mut self, codes: &[R], new_rows: &[u32]) {
        for &r in new_rows {
            self.delta.add(codes[r as usize].widen());
        }
    }

    /// Gather-staged form of [`EntropyState::ingest`]: materializes the
    /// column's codes block-by-block into `buf` at the column's native
    /// width, then counts each block as a sequential pass. Bitwise
    /// identical to `ingest` (same codes in the same order); O(Δrows)
    /// with zero steady-state allocation once `buf` has reached
    /// [`INGEST_BLOCK_ROWS`].
    #[inline]
    pub fn ingest_staged(&mut self, column: &Column, new_rows: &[u32], buf: &mut CodeBuf) {
        match column.storage() {
            ColumnStorage::Heap(packed) => {
                for_packed!(packed.codes(), |codes| self.ingest_staged_repr(codes, new_rows, buf))
            }
            ColumnStorage::Paged(paged) => {
                // Paged columns have no in-memory slab to gather from;
                // the cursor path produces the identical add sequence.
                let mut cur = paged.cursor();
                for &r in new_rows {
                    self.delta.add(cur.code(r as usize));
                }
            }
        }
        self.delta.apply_to(&mut self.counter);
    }

    #[inline]
    fn ingest_staged_repr<R: CodeRepr>(
        &mut self,
        codes: &[R],
        new_rows: &[u32],
        buf: &mut CodeBuf,
    ) {
        let buf = R::buf(buf);
        for block in new_rows.chunks(INGEST_BLOCK_ROWS) {
            gather(codes, block, buf);
            for &c in buf.iter() {
                self.delta.add(c.widen());
            }
        }
    }

    /// Recomputes the Lemma 3 interval for the current sample.
    ///
    /// * `n` — population size, `p` — per-application failure budget
    ///   (`p'_f`). The sample size `m` is taken from the counter.
    pub fn update_bounds(&mut self, n: u64, p: f64) {
        let m = self.counter.total();
        self.bounds = entropy_bounds(self.counter.entropy(), m, n, self.support as u64, p);
    }

    /// The sample entropy `H_S(α)` over everything ingested so far.
    pub fn sample_entropy(&self) -> f64 {
        self.counter.entropy()
    }

    /// Records ingested so far.
    pub fn sampled(&self) -> u64 {
        self.counter.total()
    }
}

/// Incremental MI-query state for one candidate attribute (the target
/// attribute's marginal is shared across candidates and lives in
/// [`TargetState`]).
#[derive(Debug, Clone)]
pub struct MiState {
    /// The candidate attribute this state tracks.
    pub attr: AttrIndex,
    /// The candidate's support size `u_alpha`.
    pub support: u32,
    counter: EntropyCounter,
    joint: JointEntropyCounter,
    delta: CountState,
    jdelta: PairCountState,
    /// Confidence interval from the most recent [`MiState::update_bounds`].
    pub bounds: MiBounds,
}

impl MiState {
    /// Creates state for candidate `attr` with support `u_a` against a
    /// target of support `u_t`.
    pub fn new(attr: AttrIndex, u_t: u32, u_a: u32) -> Self {
        Self {
            attr,
            support: u_a,
            counter: EntropyCounter::new(u_a),
            joint: JointEntropyCounter::new(u_t, u_a),
            delta: CountState::new(u_a),
            jdelta: PairCountState::new(),
            bounds: MiBounds {
                sample_mi: 0.0,
                lower: 0.0,
                upper: f64::INFINITY,
                lambda: f64::INFINITY,
                bias_total: f64::INFINITY,
            },
        }
    }

    /// Drains externally accumulated marginal and joint delta histograms
    /// (one iteration's merged shard counts) into the counters in the
    /// canonical order the ingest paths use: marginal first, then joint,
    /// each ascending by code.
    pub fn apply_delta(&mut self, delta: &mut CountState, joint: &mut PairCountState) {
        delta.apply_to(&mut self.counter);
        joint.apply_to(&mut self.joint);
    }

    /// Ingests newly sampled rows. `target_codes[i]` must be the target
    /// attribute's code at `new_rows[i]` (pre-gathered once per iteration
    /// so `h−1` candidates don't each re-read the target column; the
    /// shared buffer is widened to `u32`, only the candidate's own codes
    /// stay at their packed width).
    #[inline]
    pub fn ingest(&mut self, column: &Column, target_codes: &[Code], new_rows: &[u32]) {
        match column.storage() {
            ColumnStorage::Heap(packed) => {
                for_packed!(packed.codes(), |codes| {
                    self.ingest_repr(codes, target_codes, new_rows)
                })
            }
            ColumnStorage::Paged(paged) => {
                debug_assert_eq!(target_codes.len(), new_rows.len());
                let mut cur = paged.cursor();
                for (&r, &tc) in new_rows.iter().zip(target_codes) {
                    let c = cur.code(r as usize);
                    self.delta.add(c);
                    self.jdelta.add(tc, c);
                }
            }
        }
        self.delta.apply_to(&mut self.counter);
        self.jdelta.apply_to(&mut self.joint);
    }

    #[inline]
    fn ingest_repr<R: CodeRepr>(&mut self, codes: &[R], target_codes: &[Code], new_rows: &[u32]) {
        debug_assert_eq!(target_codes.len(), new_rows.len());
        for (&r, &tc) in new_rows.iter().zip(target_codes) {
            let c = codes[r as usize].widen();
            self.delta.add(c);
            self.jdelta.add(tc, c);
        }
    }

    /// Gather-staged form of [`MiState::ingest`]: the candidate column's
    /// codes are gathered block-by-block into `buf` at their native
    /// width, then zipped with the matching block of pre-gathered
    /// `target_codes`. Bitwise identical to `ingest` (same
    /// `(counter, joint)` update sequence).
    #[inline]
    pub fn ingest_staged(
        &mut self,
        column: &Column,
        target_codes: &[Code],
        new_rows: &[u32],
        buf: &mut CodeBuf,
    ) {
        match column.storage() {
            ColumnStorage::Heap(packed) => {
                for_packed!(packed.codes(), |codes| {
                    self.ingest_staged_repr(codes, target_codes, new_rows, buf)
                })
            }
            ColumnStorage::Paged(paged) => {
                debug_assert_eq!(target_codes.len(), new_rows.len());
                let mut cur = paged.cursor();
                for (&r, &tc) in new_rows.iter().zip(target_codes) {
                    let c = cur.code(r as usize);
                    self.delta.add(c);
                    self.jdelta.add(tc, c);
                }
            }
        }
        self.delta.apply_to(&mut self.counter);
        self.jdelta.apply_to(&mut self.joint);
    }

    #[inline]
    fn ingest_staged_repr<R: CodeRepr>(
        &mut self,
        codes: &[R],
        target_codes: &[Code],
        new_rows: &[u32],
        buf: &mut CodeBuf,
    ) {
        debug_assert_eq!(target_codes.len(), new_rows.len());
        let buf = R::buf(buf);
        for (rows, tcs) in
            new_rows.chunks(INGEST_BLOCK_ROWS).zip(target_codes.chunks(INGEST_BLOCK_ROWS))
        {
            gather(codes, rows, buf);
            for (&c, &tc) in buf.iter().zip(tcs) {
                let c = c.widen();
                self.delta.add(c);
                self.jdelta.add(tc, c);
            }
        }
    }

    /// Recomputes the §4.1 interval for the current sample.
    ///
    /// * `h_t`, `u_t` — the target attribute's sample entropy and support,
    /// * `n`, `p` — population size and per-application failure budget.
    pub fn update_bounds(&mut self, h_t: f64, u_t: u32, n: u64, p: f64) {
        let m = self.counter.total();
        self.bounds = mi_bounds(
            h_t,
            self.counter.entropy(),
            self.joint.entropy(),
            u_t as u64,
            self.support as u64,
            m,
            n,
            p,
        );
    }

    /// The candidate's sample entropy `H_S(α)`.
    pub fn sample_entropy(&self) -> f64 {
        self.counter.entropy()
    }

    /// The pair's sample joint entropy `H_S(α_t, α)`.
    pub fn sample_joint_entropy(&self) -> f64 {
        self.joint.entropy()
    }

    /// Records ingested so far.
    pub fn sampled(&self) -> u64 {
        self.counter.total()
    }
}

/// The target attribute's shared state in an MI query.
#[derive(Debug, Clone)]
pub struct TargetState {
    /// The target attribute index.
    pub attr: AttrIndex,
    /// The target's support size `u_t`.
    pub support: u32,
    counter: EntropyCounter,
    delta: CountState,
}

impl TargetState {
    /// Creates state for target attribute `attr` of `dataset`.
    pub fn new(dataset: &Dataset, attr: AttrIndex) -> Self {
        Self::with_support(attr, dataset.support(attr))
    }

    /// Creates state from the target's support alone (shard engine).
    pub fn with_support(attr: AttrIndex, support: u32) -> Self {
        Self {
            attr,
            support,
            counter: EntropyCounter::new(support),
            delta: CountState::new(support),
        }
    }

    /// Drains an externally accumulated target delta histogram into the
    /// counter in canonical code order.
    pub fn apply_delta(&mut self, delta: &mut CountState) {
        delta.apply_to(&mut self.counter);
    }

    /// Ingests newly sampled rows, returning their target codes for reuse
    /// by every candidate's [`MiState::ingest`].
    pub fn ingest(&mut self, column: &Column, new_rows: &[u32]) -> Vec<Code> {
        let mut gathered = Vec::new();
        self.ingest_into(column, new_rows, &mut gathered);
        gathered
    }

    /// Allocation-reusing form of [`TargetState::ingest`]: gathers the
    /// target codes into `out` (cleared first) instead of a fresh `Vec`,
    /// so the doubling loop reuses one buffer across iterations. The
    /// whole delta is gathered (not blocked) because every candidate's
    /// [`MiState::ingest_staged`] needs the full iteration's codes, and
    /// it is widened to `u32` because candidates of any width share it.
    pub fn ingest_into(&mut self, column: &Column, new_rows: &[u32], out: &mut Vec<Code>) {
        match column.storage() {
            ColumnStorage::Heap(packed) => {
                for_packed!(packed.codes(), |codes| self.ingest_into_repr(codes, new_rows, out))
            }
            ColumnStorage::Paged(paged) => {
                out.clear();
                out.reserve(new_rows.len());
                let mut cur = paged.cursor();
                for &r in new_rows {
                    let c = cur.code(r as usize);
                    self.delta.add(c);
                    out.push(c);
                }
            }
        }
        self.delta.apply_to(&mut self.counter);
    }

    fn ingest_into_repr<R: CodeRepr>(
        &mut self,
        codes: &[R],
        new_rows: &[u32],
        out: &mut Vec<Code>,
    ) {
        out.clear();
        out.reserve(new_rows.len());
        for &r in new_rows {
            let c = codes[r as usize].widen();
            self.delta.add(c);
            out.push(c);
        }
    }

    /// The target's sample entropy `H_S(α_t)`.
    pub fn sample_entropy(&self) -> f64 {
        self.counter.entropy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swope_columnar::{Field, Schema, Width};
    use swope_estimate::entropy::column_entropy;
    use swope_estimate::joint::mutual_information;

    fn dataset() -> Dataset {
        let schema = Schema::new(vec![Field::new("a", 4), Field::new("b", 2)]);
        let a = Column::new((0..64).map(|i| i % 4).collect(), 4).unwrap();
        let b = Column::new((0..64).map(|i| (i / 2) % 2).collect(), 2).unwrap();
        Dataset::new(schema, vec![a, b]).unwrap()
    }

    #[test]
    fn entropy_state_full_ingest_matches_exact() {
        let ds = dataset();
        let mut st = EntropyState::new(&ds, 0);
        let rows: Vec<u32> = (0..64).collect();
        st.ingest(ds.column(0), &rows);
        assert!((st.sample_entropy() - column_entropy(ds.column(0))).abs() < 1e-12);
        st.update_bounds(64, 0.01);
        // Full sample: bounds collapse.
        assert!((st.bounds.lower - st.bounds.upper).abs() < 1e-12);
    }

    #[test]
    fn entropy_state_incremental_ingest() {
        let ds = dataset();
        let mut st = EntropyState::new(&ds, 0);
        let rows: Vec<u32> = (0..64).collect();
        st.ingest(ds.column(0), &rows[..32]);
        st.ingest(ds.column(0), &rows[32..]);
        assert_eq!(st.sampled(), 64);
        assert!((st.sample_entropy() - column_entropy(ds.column(0))).abs() < 1e-12);
    }

    #[test]
    fn entropy_state_initial_bounds_are_vacuous() {
        let ds = dataset();
        let st = EntropyState::new(&ds, 1);
        assert_eq!(st.bounds.lower, 0.0);
        assert!(st.bounds.upper.is_infinite());
    }

    #[test]
    fn mi_state_full_ingest_matches_exact() {
        let ds = dataset();
        let mut target = TargetState::new(&ds, 0);
        let mut cand = MiState::new(1, ds.support(0), ds.support(1));
        let rows: Vec<u32> = (0..64).collect();
        let t_codes = target.ingest(ds.column(0), &rows);
        cand.ingest(ds.column(1), &t_codes, &rows);
        cand.update_bounds(target.sample_entropy(), target.support, 64, 0.01);
        let exact = mutual_information(ds.column(0), ds.column(1));
        assert!((cand.bounds.lower - exact).abs() < 1e-9);
        assert!((cand.bounds.upper - exact).abs() < 1e-9);
    }

    #[test]
    fn staged_ingest_is_bitwise_identical_to_direct() {
        // Use a delta larger than one block so the blocked path is
        // exercised, with a deterministic shuffled row order.
        let n = 3 * INGEST_BLOCK_ROWS + 137;
        let schema = Schema::new(vec![Field::new("a", 8), Field::new("b", 3)]);
        let a = Column::new((0..n as u32).map(|i| (i * 7 + i / 5) % 8).collect(), 8).unwrap();
        let b = Column::new((0..n as u32).map(|i| (i / 3) % 3).collect(), 3).unwrap();
        let ds = Dataset::new(schema, vec![a, b]).unwrap();
        let mut sampler = PrefixShuffle::new(n, 42);
        let rows: Vec<u32> = sampler.grow_to(n).to_vec();

        let mut direct = EntropyState::new(&ds, 0);
        direct.ingest(ds.column(0), &rows);
        let mut staged = EntropyState::new(&ds, 0);
        let mut buf = CodeBuf::new();
        staged.ingest_staged(ds.column(0), &rows, &mut buf);
        assert_eq!(direct.sampled(), staged.sampled());
        assert_eq!(direct.sample_entropy().to_bits(), staged.sample_entropy().to_bits());
        // The buffer must stay block-sized (allow allocator rounding)
        // rather than growing with the 3-block delta.
        assert!(buf.capacity() < 2 * INGEST_BLOCK_ROWS, "block buffer must stay block-sized");

        let mut target = TargetState::new(&ds, 1);
        let mut t_codes = Vec::new();
        target.ingest_into(ds.column(1), &rows, &mut t_codes);
        let mut direct_mi = MiState::new(0, ds.support(1), ds.support(0));
        direct_mi.ingest(ds.column(0), &t_codes, &rows);
        let mut staged_mi = MiState::new(0, ds.support(1), ds.support(0));
        staged_mi.ingest_staged(ds.column(0), &t_codes, &rows, &mut buf);
        assert_eq!(direct_mi.sample_entropy().to_bits(), staged_mi.sample_entropy().to_bits());
        assert_eq!(
            direct_mi.sample_joint_entropy().to_bits(),
            staged_mi.sample_joint_entropy().to_bits()
        );
    }

    #[test]
    fn staged_ingest_matches_direct_across_widths() {
        // The same logical column forced to each storage width must
        // produce identical counters via both ingest paths, and the
        // scratch buffer must land on the column's native width.
        let n = INGEST_BLOCK_ROWS + 321;
        let codes: Vec<Code> = (0..n as u32).map(|i| (i * 31 + i / 7) % 200).collect();
        let base = Column::new(codes, 200).unwrap();
        let mut sampler = PrefixShuffle::new(n, 7);
        let rows: Vec<u32> = sampler.grow_to(n / 2).to_vec();

        let schema = Schema::new(vec![Field::new("a", 200)]);
        let reference = {
            let ds = Dataset::new(schema.clone(), vec![base.clone()]).unwrap();
            let mut st = EntropyState::new(&ds, 0);
            st.ingest(ds.column(0), &rows);
            st.sample_entropy().to_bits()
        };
        for width in [Width::U8, Width::U16, Width::U32] {
            let col = base.with_width(width).unwrap();
            let ds = Dataset::new(schema.clone(), vec![col]).unwrap();
            let mut st = EntropyState::new(&ds, 0);
            let mut buf = CodeBuf::new();
            st.ingest_staged(ds.column(0), &rows, &mut buf);
            assert_eq!(st.sample_entropy().to_bits(), reference, "width {width}");
        }
    }

    #[test]
    fn gather_scratch_grows_slots_on_demand() {
        let mut scratch = GatherScratch::new(2);
        assert_eq!(scratch.slots(5).len(), 5);
        let (target, slots) = scratch.target_and_slots(3);
        target.push(1);
        assert_eq!(slots.len(), 3);
        // Existing slots are preserved (buffers are reused, not rebuilt).
        <u32 as CodeRepr>::buf(&mut scratch.slots(5)[4]).push(9);
        assert_eq!(<u32 as CodeRepr>::buf(&mut scratch.slots(5)[4]), &vec![9]);
    }

    #[test]
    fn target_state_returns_gathered_codes() {
        let ds = dataset();
        let mut target = TargetState::new(&ds, 0);
        let codes = target.ingest(ds.column(0), &[0, 5, 10]);
        assert_eq!(codes, vec![0, 1, 2]);
    }

    #[test]
    fn make_sampler_respects_strategy() {
        let mut row = make_sampler(100, SamplingStrategy::Row { seed: 1 });
        assert_eq!(row.grow_to(10).len(), 10);
        let mut page = make_sampler(100, SamplingStrategy::Page { page_rows: 8, seed: 1 });
        // Page sampler rounds up to whole pages.
        assert_eq!(page.grow_to(10).len(), 16);
    }

    #[test]
    fn bounds_bracket_exact_value_during_sampling() {
        // With generous p, sampled bounds should bracket the exact entropy.
        let ds = dataset();
        let exact = column_entropy(ds.column(0));
        let mut sampler = make_sampler(64, SamplingStrategy::Row { seed: 3 });
        let mut st = EntropyState::new(&ds, 0);
        let delta = sampler.grow_to(32).to_vec();
        st.ingest(ds.column(0), &delta);
        st.update_bounds(64, 0.001);
        assert!(st.bounds.lower <= exact + 1e-9);
        assert!(exact <= st.bounds.upper + 1e-9);
    }
}
