//! Algorithm 4: SWOPE approximate filtering on empirical mutual
//! information.

use swope_columnar::{AttrIndex, Dataset};
use swope_obs::{NoopObserver, Phase, QueryKind, QueryObserver};
use swope_sampling::DoublingSchedule;

use crate::exec::Executor;
use crate::mi_topk::mi_score;
use crate::observe::Instrumented;
use crate::report::{AttrScore, FilterResult, WorkKind};
use crate::scope::Population;
use crate::state::{GatherScratch, MiState, TargetState};
use crate::{SwopeConfig, SwopeError};

/// Approximate filtering query on empirical mutual information against a
/// target attribute (paper Algorithm 4).
///
/// Returns candidate attributes whose `I(α_t, α)` is (approximately) at
/// least `η`, satisfying Definition 6 with probability `1 − p_f`. The
/// steps are Algorithm 2's with entropy intervals replaced by the §4.1 MI
/// intervals and the failure budget set to `p'_f = p_f/(3·i_max·(h−1))`:
///
/// * `Ī − I̲ < 2εη` → decide by the point estimate `Î ≷ η`;
/// * `I̲ ≥ (1−ε)η` → accept;
/// * `Ī < (1+ε)η` → reject.
///
/// Expected cost is `O(min{hN, h·log(h·log N/p_f)·log²N / (ε²·η²)})`
/// (Theorem 6).
///
/// # Errors
///
/// Fails fast on invalid `ε`/`p_f`/`η`, an empty dataset, a target index
/// out of range, or no candidate attributes.
pub fn mi_filter(
    dataset: &Dataset,
    target: AttrIndex,
    eta: f64,
    config: &SwopeConfig,
) -> Result<FilterResult, SwopeError> {
    mi_filter_observed(dataset, target, eta, config, &mut NoopObserver)
}

/// [`mi_filter`] with a [`QueryObserver`] attached.
///
/// The result is bitwise-identical to the unobserved call with the same
/// config.
pub fn mi_filter_observed<O: QueryObserver>(
    dataset: &Dataset,
    target: AttrIndex,
    eta: f64,
    config: &SwopeConfig,
    observer: &mut O,
) -> Result<FilterResult, SwopeError> {
    mi_filter_exec(dataset, target, eta, config, observer, &Executor::new(config.threads))
}

/// [`mi_filter_observed`] with an injected [`Executor`].
///
/// See [`crate::exec`]: the executor supplies the (possibly shared)
/// worker pool, and results are bitwise identical for any executor.
pub fn mi_filter_exec<O: QueryObserver>(
    dataset: &Dataset,
    target: AttrIndex,
    eta: f64,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<FilterResult, SwopeError> {
    config.validate()?;
    if !eta.is_finite() || eta < 0.0 {
        return Err(SwopeError::InvalidThreshold(eta));
    }
    let h = dataset.num_attrs();
    let n = dataset.num_rows();
    if h == 0 || n == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    if target >= h {
        return Err(SwopeError::TargetOutOfRange { target, num_attrs: h });
    }
    if h < 2 {
        return Err(SwopeError::NoCandidates);
    }
    mi_filter_run(dataset, target, eta, config, observer, exec, Population::unscoped(n, config))
}

/// The adaptive loop body, generic over the sampled population (see
/// [`crate::scope`]). MI populations are always physical — covered-page
/// histograms cannot synthesize joint co-occurrences.
#[allow(clippy::too_many_arguments)]
pub(crate) fn mi_filter_run<O: QueryObserver>(
    dataset: &Dataset,
    target: AttrIndex,
    eta: f64,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
    mut pop: Population,
) -> Result<FilterResult, SwopeError> {
    let h = dataset.num_attrs();
    let n = pop.n();
    let candidates = h - 1;
    let epsilon = config.epsilon;
    let p_f = config.resolve_p_f_rows(n);
    let m0 = config.resolve_m0_rows(dataset, n, p_f);
    let schedule = DoublingSchedule::new(n, m0);
    let p_prime = p_f / (3.0 * schedule.i_max() as f64 * candidates as f64);

    let mut target_state = TargetState::new(dataset, target);
    let u_t = target_state.support;
    let mut states: Vec<MiState> =
        (0..h).filter(|&a| a != target).map(|a| MiState::new(a, u_t, dataset.support(a))).collect();
    let mut scratch = GatherScratch::new(candidates);
    let mut accepted: Vec<AttrScore> = Vec::new();
    let mut it = Instrumented::start(observer, QueryKind::MiFilter, h, n, config);
    it.setup(pop.setup_rows(), pop.setup_nanos());

    let mut converged_early = false;
    let mut m_target = schedule.m0();
    while !states.is_empty() {
        it.begin_iteration();
        let span = it.phase_start();
        let (delta_range, _covered) = pop.grow(m_target);
        it.phase_end(Phase::SampleGrow, span);
        let m = pop.sampled();
        let delta = &pop.rows()[delta_range];
        let live = states.len();
        it.iteration(m, live, swope_estimate::bounds::lambda(m as u64, n as u64, p_prime));
        it.record_work(delta.len(), live, WorkKind::MiPerTarget);

        let span = it.phase_start();
        let (t_buf, slots) = scratch.target_and_slots(live);
        target_state.ingest_into(dataset.column(target), delta, t_buf);
        let t_codes: &[u32] = t_buf;
        exec.for_each2(&mut states, slots, |st, buf| {
            st.ingest_staged(dataset.column(st.attr), t_codes, delta, buf);
        });
        it.phase_end(Phase::Ingest, span);
        let span = it.phase_start();
        let h_t = target_state.sample_entropy();
        exec.for_each_mut(&mut states, |st| {
            st.update_bounds(h_t, u_t, n as u64, p_prime);
        });
        it.phase_end(Phase::UpdateBounds, span);

        let span = it.phase_start();
        states.retain(|st| {
            let b = &st.bounds;
            if b.width() < 2.0 * epsilon * eta {
                let iter = it.attr_retired(st.attr, b.lower, b.upper);
                if b.point_estimate() >= eta {
                    accepted.push(mi_score(dataset, st, iter));
                }
                false
            } else if b.lower >= (1.0 - epsilon) * eta {
                let iter = it.attr_retired(st.attr, b.lower, b.upper);
                accepted.push(mi_score(dataset, st, iter));
                false
            } else if b.upper >= (1.0 + epsilon) * eta {
                true
            } else {
                it.attr_retired(st.attr, b.lower, b.upper);
                false
            }
        });

        if states.is_empty() {
            converged_early = m < n;
            it.phase_end(Phase::Decide, span);
            break;
        }
        if m >= n {
            // Exact values; only reachable stragglers are the εη = 0 case.
            for st in states.drain(..) {
                let iter = it.attr_retired(st.attr, st.bounds.lower, st.bounds.upper);
                let exact_mi = (target_state.sample_entropy() + st.sample_entropy()
                    - st.sample_joint_entropy())
                .max(0.0);
                if exact_mi >= eta {
                    accepted.push(mi_score(dataset, &st, iter));
                }
            }
            it.phase_end(Phase::Decide, span);
            break;
        }
        it.phase_end(Phase::Decide, span);
        m_target = (m * 2).min(n);
    }

    accepted.sort_by(|a, b| {
        b.estimate
            .partial_cmp(&a.estimate)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.attr.cmp(&b.attr))
    });
    Ok(FilterResult { accepted, stats: it.finish(converged_early) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use swope_columnar::{Column, Field, Schema};
    use swope_estimate::joint::mutual_information;

    /// Target cycles 0..4; candidates copy it with varying scrambling plus
    /// one independent column (MI ≈ 0).
    fn correlated_dataset(n: usize) -> Dataset {
        let target: Vec<u32> = (0..n).map(|r| (r as u32) % 4).collect();
        let mut fields = vec![Field::new("target", 4)];
        let mut columns = vec![Column::new(target.clone(), 4).unwrap()];
        for (i, noise_mod) in [1u32, 7].iter().enumerate() {
            let codes: Vec<u32> = (0..n)
                .map(|r| {
                    if (r as u32) % (noise_mod + 1) == 0 {
                        ((r as u32).wrapping_mul(2654435761) >> 13) % 4
                    } else {
                        target[r]
                    }
                })
                .collect();
            fields.push(Field::new(format!("c{i}"), 4));
            columns.push(Column::new(codes, 4).unwrap());
        }
        fields.push(Field::new("indep", 4));
        columns.push(
            Column::new(
                (0..n).map(|r| ((r as u32).wrapping_mul(2654435761) >> 13) % 4).collect(),
                4,
            )
            .unwrap(),
        );
        Dataset::new(Schema::new(fields), columns).unwrap()
    }

    fn config() -> SwopeConfig {
        SwopeConfig { epsilon: 0.5, ..SwopeConfig::default() }
    }

    #[test]
    fn accepts_informative_rejects_independent() {
        let ds = correlated_dataset(30_000);
        // c1 (lightly scrambled) has MI ~1.6 bits; indep has ~0.
        let r = mi_filter(&ds, 0, 0.5, &config()).unwrap();
        assert!(r.accepted.iter().any(|s| s.name == "c1"));
        assert!(r.accepted.iter().all(|s| s.name != "indep"));
    }

    #[test]
    fn definition6_compliance_against_exact_scores() {
        let ds = correlated_dataset(20_000);
        let eta = 0.3;
        let eps = 0.5;
        let cfg = SwopeConfig { epsilon: eps, ..SwopeConfig::default() };
        let r = mi_filter(&ds, 0, eta, &cfg).unwrap();
        for attr in 1..ds.num_attrs() {
            let exact = mutual_information(ds.column(0), ds.column(attr));
            if exact >= (1.0 + eps) * eta {
                assert!(r.contains(attr), "attr {attr} (I={exact}) must be accepted");
            }
            if exact < (1.0 - eps) * eta {
                assert!(!r.contains(attr), "attr {attr} (I={exact}) must be rejected");
            }
        }
    }

    #[test]
    fn threshold_zero_accepts_all_candidates() {
        let ds = correlated_dataset(2_000);
        let r = mi_filter(&ds, 0, 0.0, &config()).unwrap();
        assert_eq!(r.accepted.len(), ds.num_attrs() - 1);
    }

    #[test]
    fn huge_threshold_accepts_nothing() {
        let ds = correlated_dataset(10_000);
        let r = mi_filter(&ds, 0, 10.0, &config()).unwrap();
        assert!(r.accepted.is_empty());
    }

    #[test]
    fn validation_errors() {
        let ds = correlated_dataset(500);
        assert!(matches!(
            mi_filter(&ds, 42, 0.3, &config()),
            Err(SwopeError::TargetOutOfRange { .. })
        ));
        assert!(matches!(mi_filter(&ds, 0, -0.5, &config()), Err(SwopeError::InvalidThreshold(_))));
    }

    #[test]
    fn deterministic_and_parallel_consistent() {
        let ds = correlated_dataset(20_000);
        let c = config().with_seed(3);
        let a = mi_filter(&ds, 0, 0.3, &c).unwrap();
        let b = mi_filter(&ds, 0, 0.3, &c.clone().with_threads(4)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn target_excluded_from_answer() {
        let ds = correlated_dataset(5_000);
        let r = mi_filter(&ds, 0, 0.0, &config()).unwrap();
        assert!(!r.contains(0));
    }
}
