use swope_columnar::AttrIndex;

/// One scored attribute in a query answer.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrScore {
    /// Attribute index in the queried dataset.
    pub attr: AttrIndex,
    /// Attribute name from the schema.
    pub name: String,
    /// Point estimate `(lower + upper) / 2` of the score at termination.
    pub estimate: f64,
    /// Lower confidence bound at termination.
    pub lower: f64,
    /// Upper confidence bound at termination.
    pub upper: f64,
    /// The doubling iteration (1-based) at which this attribute left the
    /// race — pruned, accepted, rejected, or resolved at query end. `0`
    /// means the score was not produced by an adaptive loop (exact scans
    /// and baseline algorithms).
    pub retired_iteration: usize,
}

/// Execution statistics shared by all query results.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryStats {
    /// Final sample size `M` when the query stopped.
    pub sample_size: usize,
    /// Number of doubling iterations executed.
    pub iterations: usize,
    /// Total counter-update work: one unit per (record, counter) ingestion.
    /// This is the quantity the paper's `O(h·M*)` complexity counts; see
    /// [`WorkKind`] for exactly what each query shape charges per sampled
    /// record.
    pub rows_scanned: u64,
    /// Whether the stopping rule fired before the sample reached `N`
    /// (if `false`, the query degenerated to an exact scan).
    pub converged_early: bool,
    /// One entry per doubling iteration, recording how the candidate set
    /// and the deviation radius evolved — the raw material for
    /// convergence plots and pruning-effectiveness analysis.
    pub trace: Vec<IterationTrace>,
}

/// Snapshot of one doubling iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationTrace {
    /// 1-based iteration index.
    pub iteration: usize,
    /// Sample size `M` at this iteration.
    pub sample_size: usize,
    /// Live candidates *entering* the iteration (before this round's
    /// pruning/decisions).
    pub candidates: usize,
    /// The shared deviation radius λ at this iteration's `M`.
    pub lambda: f64,
    /// Candidates that left the race during this iteration (pruned,
    /// accepted, rejected, or resolved at termination).
    pub retired: usize,
}

/// The counter-update cost shape of one doubling iteration, making the
/// `rows_scanned` accounting uniform across all six adaptive loops.
///
/// Every variant's unit is one (record, counter) ingestion — the quantity
/// the paper's `O(h·M*)` complexity counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkKind {
    /// Entropy queries: one marginal-counter update per (record,
    /// candidate) — `Δ·c` units.
    EntropyMarginals,
    /// Single-target MI queries: one target-column scan per record plus a
    /// marginal and a joint update per (record, candidate) —
    /// `Δ·(2c + 1)` units.
    MiPerTarget,
    /// Batched MI with shared marginal counters: a target is charged its
    /// target scan plus one joint update per (record, candidate); the
    /// shared marginal ingestion is amortized across targets and not
    /// charged per target — `Δ·(c + 1)` units.
    MiSharedMarginals,
}

impl WorkKind {
    /// Work units charged for ingesting `delta_len` new records across
    /// `candidates` live candidates.
    pub fn units(self, delta_len: usize, candidates: usize) -> u64 {
        let (d, c) = (delta_len as u64, candidates as u64);
        match self {
            WorkKind::EntropyMarginals => d * c,
            WorkKind::MiPerTarget => d * (2 * c + 1),
            WorkKind::MiSharedMarginals => d * (c + 1),
        }
    }
}

impl QueryStats {
    /// Records one iteration in the trace and updates the aggregates.
    pub(crate) fn record_iteration(&mut self, sample_size: usize, candidates: usize, lambda: f64) {
        self.iterations += 1;
        self.sample_size = sample_size;
        self.trace.push(IterationTrace {
            iteration: self.iterations,
            sample_size,
            candidates,
            lambda,
            retired: 0,
        });
    }

    /// Adds `kind`-shaped ingestion work for one iteration's delta to
    /// `rows_scanned`. All six adaptive loops account through here.
    pub fn record_work(&mut self, delta_len: usize, candidates: usize, kind: WorkKind) {
        self.rows_scanned += kind.units(delta_len, candidates);
    }

    /// Marks one candidate as having left the race during `iteration`.
    pub(crate) fn note_retirement(&mut self, iteration: usize) {
        if let Some(t) = self.trace.iter_mut().rfind(|t| t.iteration == iteration) {
            t.retired += 1;
        }
    }
}

/// Result of an approximate top-k query ([`crate::entropy_top_k`],
/// [`crate::mi_top_k`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TopKResult {
    /// The k returned attributes, sorted by descending upper bound (the
    /// paper's return order).
    pub top: Vec<AttrScore>,
    /// Execution statistics.
    pub stats: QueryStats,
}

/// Result of an approximate filtering query ([`crate::entropy_filter`],
/// [`crate::mi_filter`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FilterResult {
    /// The accepted attributes, sorted by descending estimate.
    pub accepted: Vec<AttrScore>,
    /// Execution statistics.
    pub stats: QueryStats,
}

impl TopKResult {
    /// The returned attribute indices, in order.
    pub fn attr_indices(&self) -> Vec<AttrIndex> {
        self.top.iter().map(|a| a.attr).collect()
    }
}

impl FilterResult {
    /// The accepted attribute indices, in order.
    pub fn attr_indices(&self) -> Vec<AttrIndex> {
        self.accepted.iter().map(|a| a.attr).collect()
    }

    /// Whether `attr` was accepted.
    pub fn contains(&self, attr: AttrIndex) -> bool {
        self.accepted.iter().any(|a| a.attr == attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(attr: usize, est: f64) -> AttrScore {
        AttrScore {
            attr,
            name: format!("a{attr}"),
            estimate: est,
            lower: est - 0.1,
            upper: est + 0.1,
            retired_iteration: 1,
        }
    }

    #[test]
    fn work_kind_units_match_documented_shapes() {
        assert_eq!(WorkKind::EntropyMarginals.units(10, 4), 40);
        assert_eq!(WorkKind::MiPerTarget.units(10, 4), 90);
        assert_eq!(WorkKind::MiSharedMarginals.units(10, 4), 50);
        assert_eq!(WorkKind::EntropyMarginals.units(0, 4), 0);
    }

    #[test]
    fn record_work_accumulates() {
        let mut s = QueryStats::default();
        s.record_work(100, 3, WorkKind::EntropyMarginals);
        s.record_work(50, 2, WorkKind::MiPerTarget);
        assert_eq!(s.rows_scanned, 300 + 250);
    }

    #[test]
    fn note_retirement_lands_on_matching_trace_entry() {
        let mut s = QueryStats::default();
        s.record_iteration(10, 5, 0.5);
        s.record_iteration(20, 5, 0.4);
        s.note_retirement(2);
        s.note_retirement(2);
        s.note_retirement(1);
        assert_eq!(s.trace[0].retired, 1);
        assert_eq!(s.trace[1].retired, 2);
        // Unknown iteration is ignored rather than panicking.
        s.note_retirement(9);
    }

    #[test]
    fn attr_indices_preserve_order() {
        let r =
            TopKResult { top: vec![score(3, 2.0), score(1, 1.5)], stats: QueryStats::default() };
        assert_eq!(r.attr_indices(), vec![3, 1]);
    }

    #[test]
    fn filter_contains() {
        let r = FilterResult {
            accepted: vec![score(0, 1.0), score(2, 0.9)],
            stats: QueryStats::default(),
        };
        assert!(r.contains(2));
        assert!(!r.contains(1));
        assert_eq!(r.attr_indices(), vec![0, 2]);
    }
}
