use serde::{Deserialize, Serialize};
use swope_columnar::AttrIndex;

/// One scored attribute in a query answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrScore {
    /// Attribute index in the queried dataset.
    pub attr: AttrIndex,
    /// Attribute name from the schema.
    pub name: String,
    /// Point estimate `(lower + upper) / 2` of the score at termination.
    pub estimate: f64,
    /// Lower confidence bound at termination.
    pub lower: f64,
    /// Upper confidence bound at termination.
    pub upper: f64,
}

/// Execution statistics shared by all query results.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct QueryStats {
    /// Final sample size `M` when the query stopped.
    pub sample_size: usize,
    /// Number of doubling iterations executed.
    pub iterations: usize,
    /// Total counter-update work: one unit per (record, counter) ingestion.
    /// This is the quantity the paper's `O(h·M*)` complexity counts.
    pub rows_scanned: u64,
    /// Whether the stopping rule fired before the sample reached `N`
    /// (if `false`, the query degenerated to an exact scan).
    pub converged_early: bool,
    /// One entry per doubling iteration, recording how the candidate set
    /// and the deviation radius evolved — the raw material for
    /// convergence plots and pruning-effectiveness analysis.
    pub trace: Vec<IterationTrace>,
}

/// Snapshot of one doubling iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationTrace {
    /// 1-based iteration index.
    pub iteration: usize,
    /// Sample size `M` at this iteration.
    pub sample_size: usize,
    /// Live candidates *entering* the iteration (before this round's
    /// pruning/decisions).
    pub candidates: usize,
    /// The shared deviation radius λ at this iteration's `M`.
    pub lambda: f64,
}

impl QueryStats {
    /// Records one iteration in the trace and updates the aggregates.
    pub(crate) fn record_iteration(
        &mut self,
        sample_size: usize,
        candidates: usize,
        lambda: f64,
    ) {
        self.iterations += 1;
        self.sample_size = sample_size;
        self.trace.push(IterationTrace {
            iteration: self.iterations,
            sample_size,
            candidates,
            lambda,
        });
    }
}

/// Result of an approximate top-k query ([`crate::entropy_top_k`],
/// [`crate::mi_top_k`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopKResult {
    /// The k returned attributes, sorted by descending upper bound (the
    /// paper's return order).
    pub top: Vec<AttrScore>,
    /// Execution statistics.
    pub stats: QueryStats,
}

/// Result of an approximate filtering query ([`crate::entropy_filter`],
/// [`crate::mi_filter`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterResult {
    /// The accepted attributes, sorted by descending estimate.
    pub accepted: Vec<AttrScore>,
    /// Execution statistics.
    pub stats: QueryStats,
}

impl TopKResult {
    /// The returned attribute indices, in order.
    pub fn attr_indices(&self) -> Vec<AttrIndex> {
        self.top.iter().map(|a| a.attr).collect()
    }
}

impl FilterResult {
    /// The accepted attribute indices, in order.
    pub fn attr_indices(&self) -> Vec<AttrIndex> {
        self.accepted.iter().map(|a| a.attr).collect()
    }

    /// Whether `attr` was accepted.
    pub fn contains(&self, attr: AttrIndex) -> bool {
        self.accepted.iter().any(|a| a.attr == attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(attr: usize, est: f64) -> AttrScore {
        AttrScore {
            attr,
            name: format!("a{attr}"),
            estimate: est,
            lower: est - 0.1,
            upper: est + 0.1,
        }
    }

    #[test]
    fn attr_indices_preserve_order() {
        let r = TopKResult {
            top: vec![score(3, 2.0), score(1, 1.5)],
            stats: QueryStats::default(),
        };
        assert_eq!(r.attr_indices(), vec![3, 1]);
    }

    #[test]
    fn filter_contains() {
        let r = FilterResult {
            accepted: vec![score(0, 1.0), score(2, 0.9)],
            stats: QueryStats::default(),
        };
        assert!(r.contains(2));
        assert!(!r.contains(1));
        assert_eq!(r.attr_indices(), vec![0, 2]);
    }
}
