use std::fmt;

/// Errors produced by SWOPE query validation.
///
/// All errors are detected before any sampling work starts; a query that
/// begins executing always produces a result.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SwopeError {
    /// `ε` outside the open interval `(0, 1)` required by Definitions 5–6.
    InvalidEpsilon(f64),
    /// `p_f` outside the open interval `(0, 1)`.
    InvalidFailureProbability(f64),
    /// `k` is zero or exceeds the number of candidate attributes.
    InvalidK {
        /// Requested k.
        k: usize,
        /// Number of candidate attributes available.
        candidates: usize,
    },
    /// The filtering threshold `η` is negative or not finite.
    InvalidThreshold(f64),
    /// The dataset has no rows or no attributes.
    EmptyDataset,
    /// The MI target attribute index is out of range.
    TargetOutOfRange {
        /// The offending index.
        target: usize,
        /// Number of attributes in the dataset.
        num_attrs: usize,
    },
    /// A mutual-information query needs at least one non-target attribute.
    NoCandidates,
    /// The query scope is malformed: an inverted row range, a predicate
    /// attribute out of range, or a predicate code outside its support.
    InvalidScope(String),
    /// Shard-parallel execution was requested with page-granular
    /// sampling. The shard loops replay one global row-level shuffle on
    /// every shard, which has no page analogue; use
    /// [`crate::SamplingStrategy::Row`].
    ShardedPageSampling,
    /// A shard transport failed mid-query: a peer became unreachable,
    /// timed out, or answered with a malformed or error frame.
    Transport(String),
}

impl fmt::Display for SwopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidEpsilon(e) => {
                write!(f, "epsilon must satisfy 0 < ε < 1, got {e}")
            }
            Self::InvalidFailureProbability(p) => {
                write!(f, "failure probability must satisfy 0 < p_f < 1, got {p}")
            }
            Self::InvalidK { k, candidates } => {
                write!(f, "k = {k} is invalid for {candidates} candidate attribute(s)")
            }
            Self::InvalidThreshold(t) => {
                write!(f, "threshold must be finite and nonnegative, got {t}")
            }
            Self::EmptyDataset => write!(f, "dataset has no rows or no attributes"),
            Self::TargetOutOfRange { target, num_attrs } => {
                write!(f, "target attribute {target} out of range (dataset has {num_attrs})")
            }
            Self::NoCandidates => {
                write!(f, "mutual information query needs at least one candidate attribute")
            }
            Self::InvalidScope(reason) => write!(f, "invalid scope: {reason}"),
            Self::ShardedPageSampling => {
                write!(f, "sharded execution supports row-level sampling only")
            }
            Self::Transport(reason) => write!(f, "shard transport error: {reason}"),
        }
    }
}

impl std::error::Error for SwopeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_values() {
        assert!(SwopeError::InvalidEpsilon(1.5).to_string().contains("1.5"));
        assert!(SwopeError::InvalidK { k: 9, candidates: 3 }.to_string().contains('9'));
        assert!(SwopeError::TargetOutOfRange { target: 7, num_attrs: 4 }.to_string().contains('7'));
    }
}
