//! Shard-parallel scatter-gather execution with an exact count merge.
//!
//! The adaptive loops in this crate are sequential over one dataset. This
//! module splits the *counting* work of every doubling iteration across
//! row shards — in-process slices of one dataset here, remote peers in
//! `swope-cluster` — and merges the per-shard counts back into the single
//! bounds/decide machinery the loops already use.
//!
//! ## Why the merge can be exact
//!
//! Entropy counters carry an incrementally maintained `f64` running sum,
//! so the *order* codes are added determines the final rounding. Shards
//! therefore never touch floating point: each shard returns a pure
//! integer delta histogram ([`CountState`] per attribute, plus a
//! [`PairCountState`] of joint occurrences for MI queries). Integer
//! histograms merge associatively and commutatively — addition of counts
//! — so any shard count, any partition, and any merge order produce the
//! *same* merged histogram. The merged delta is then applied to the
//! master counters in one canonical order (ascending code), which makes
//! the floating-point update sequence — and hence every bound, decision,
//! and returned byte — identical for 1 shard, `S` shards, or `S` remote
//! peers. The unsharded loops apply their deltas through the same
//! canonical path (see [`crate::state`]), so sharded and unsharded
//! results are bitwise identical too.
//!
//! ## Sampling
//!
//! All shards replay **one global** [`PrefixShuffle`] over the union
//! population (the same shuffle an unsharded run uses), and each shard
//! counts only the delta rows that fall in its own contiguous row range.
//! Row-level sampling only: page-granular sampling has no shard-stable
//! analogue, and requesting it yields [`SwopeError::ShardedPageSampling`].
//!
//! ## Layers
//!
//! * [`ShardTransport`] — the engine's view of "somewhere that counts":
//!   [`LocalShardSource`] fans shards out on an [`Executor`];
//!   `swope-cluster`'s wire transport drives remote peers through the
//!   same trait.
//! * `*_transport` — the six adaptive loops, generic over the transport.
//! * `*_sharded` / `*_sharded_exec` — entry points mirroring the
//!   unsharded API, answering from `shards` in-process row shards.

use swope_columnar::{AttrIndex, Code, CodeRepr, Column, ColumnStorage, Dataset};
use swope_estimate::bounds::lambda;
use swope_estimate::entropy::EntropyCounter;
use swope_estimate::freq::{pack_pair, unpack_pair};
use swope_estimate::joint::JointEntropyCounter;
use swope_obs::{NoopObserver, Phase, QueryKind, QueryObserver};
use swope_sampling::{DoublingSchedule, PrefixShuffle, Sampler};
use swope_store::for_packed;

use crate::exec::Executor;
use crate::observe::Instrumented;
use crate::profile::ProfileResult;
use crate::report::{AttrScore, FilterResult, TopKResult, WorkKind};
use crate::state::{EntropyState, MiState, TargetState};
use crate::topk::top_k_indices;
use crate::{SamplingStrategy, SwopeConfig, SwopeError};

/// A pure-integer delta histogram over one attribute's codes.
///
/// This is the unit of the exact merge protocol: shards accumulate codes
/// here (no floating point), merges add counts (associative and
/// commutative), and [`CountState::apply_to`] drains the histogram into
/// an [`EntropyCounter`] in canonical ascending-code order so the
/// counter's running `f64` sum is updated by an order-independent
/// sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct CountState {
    support: u32,
    counts: Vec<u64>,
    touched: Vec<u32>,
    total: u64,
}

impl CountState {
    /// An empty histogram over codes `0..support`.
    pub fn new(support: u32) -> Self {
        Self { support, counts: vec![0; support as usize], touched: Vec::new(), total: 0 }
    }

    /// The attribute's support size.
    pub fn support(&self) -> u32 {
        self.support
    }

    /// Total occurrences accumulated.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True when nothing has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Records one occurrence of `code`.
    #[inline]
    pub fn add(&mut self, code: Code) {
        self.increment(code, 1);
    }

    /// Records `k` occurrences of `code`.
    #[inline]
    pub fn increment(&mut self, code: Code, k: u64) {
        if k == 0 {
            return;
        }
        let slot = &mut self.counts[code as usize];
        if *slot == 0 {
            self.touched.push(code);
        }
        *slot += k;
        self.total += k;
    }

    /// Merges another shard's histogram into this one. Plain addition of
    /// per-code counts: associative, commutative, and exact.
    pub fn merge(&mut self, other: &CountState) {
        debug_assert_eq!(self.support, other.support, "merging histograms of different supports");
        for &code in &other.touched {
            self.increment(code, other.counts[code as usize]);
        }
    }

    /// The accumulated `(code, count)` entries in ascending code order —
    /// the canonical form used for merge-order-independence checks and
    /// for wire serialization.
    pub fn sorted_entries(&self) -> Vec<(Code, u64)> {
        let mut touched = self.touched.clone();
        touched.sort_unstable();
        touched.into_iter().map(|c| (c, self.counts[c as usize])).collect()
    }

    /// Drains the histogram into `counter` in canonical ascending-code
    /// order, leaving the histogram empty for reuse.
    pub fn apply_to(&mut self, counter: &mut EntropyCounter) {
        self.touched.sort_unstable();
        for &code in &self.touched {
            let slot = &mut self.counts[code as usize];
            counter.add_count(code, *slot);
            *slot = 0;
        }
        self.touched.clear();
        self.total = 0;
    }

    /// Empties the histogram without applying it.
    pub fn clear(&mut self) {
        for &code in &self.touched {
            self.counts[code as usize] = 0;
        }
        self.touched.clear();
        self.total = 0;
    }
}

/// A pure-integer delta of joint `(target, candidate)` code occurrences.
///
/// Stored as packed-pair runs (`key = target << 32 | candidate`);
/// [`PairCountState::canonicalize`] sorts and coalesces the runs, after
/// which [`PairCountState::apply_to`] feeds a [`JointEntropyCounter`] in
/// ascending-key order. Like [`CountState`], merging is run-list
/// concatenation followed by canonicalization — exact and order
/// independent.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PairCountState {
    runs: Vec<(u64, u64)>,
    canonical: bool,
}

impl PairCountState {
    /// An empty joint delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total joint occurrences accumulated.
    pub fn total(&self) -> u64 {
        self.runs.iter().map(|&(_, k)| k).sum()
    }

    /// True when nothing has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Records one co-occurrence of `(code_t, code_a)`.
    #[inline]
    pub fn add(&mut self, code_t: Code, code_a: Code) {
        self.runs.push((pack_pair(code_t, code_a), 1));
        self.canonical = false;
    }

    /// Records `k` co-occurrences of a packed pair key (wire decode path).
    #[inline]
    pub fn increment(&mut self, key: u64, k: u64) {
        if k == 0 {
            return;
        }
        self.runs.push((key, k));
        self.canonical = false;
    }

    /// Merges another shard's joint delta into this one.
    pub fn merge(&mut self, other: &PairCountState) {
        self.runs.extend_from_slice(&other.runs);
        self.canonical = false;
    }

    /// Sorts the runs by pair key and coalesces duplicates, producing the
    /// canonical form. Idempotent.
    pub fn canonicalize(&mut self) {
        if self.canonical {
            return;
        }
        self.runs.sort_unstable_by_key(|&(key, _)| key);
        let mut out = 0usize;
        for i in 0..self.runs.len() {
            if out > 0 && self.runs[out - 1].0 == self.runs[i].0 {
                self.runs[out - 1].1 += self.runs[i].1;
            } else {
                self.runs[out] = self.runs[i];
                out += 1;
            }
        }
        self.runs.truncate(out);
        self.canonical = true;
    }

    /// The canonicalized `(packed_key, count)` runs (wire encode path).
    pub fn canonical_runs(&mut self) -> &[(u64, u64)] {
        self.canonicalize();
        &self.runs
    }

    /// Drains the delta into `joint` in canonical ascending-key order,
    /// leaving it empty for reuse.
    pub fn apply_to(&mut self, joint: &mut JointEntropyCounter) {
        self.canonicalize();
        for &(key, k) in &self.runs {
            let (t, a) = unpack_pair(key);
            joint.add_count(t, a, k);
        }
        self.runs.clear();
    }
}

/// A contiguous, even partition of rows `0..num_rows` into shards.
///
/// Shard `i` owns `range(i)`; the first `num_rows % shards` shards own
/// one extra row. The shard count is clamped into `1..=num_rows.max(1)`.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    // starts[i]..starts[i+1] is shard i's row range; len = shards + 1.
    starts: Vec<u32>,
}

impl ShardPlan {
    /// Partitions `num_rows` rows into `shards` contiguous shards.
    pub fn new(num_rows: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, num_rows.max(1));
        let base = num_rows / shards;
        let extra = num_rows % shards;
        let mut starts = Vec::with_capacity(shards + 1);
        let mut at = 0usize;
        starts.push(0);
        for i in 0..shards {
            at += base + usize::from(i < extra);
            starts.push(at as u32);
        }
        Self { starts }
    }

    /// Number of shards in the plan.
    pub fn num_shards(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total rows covered by the plan.
    pub fn num_rows(&self) -> usize {
        *self.starts.last().expect("plan has a final boundary") as usize
    }

    /// The row range shard `shard` owns.
    pub fn range(&self, shard: usize) -> std::ops::Range<usize> {
        self.starts[shard] as usize..self.starts[shard + 1] as usize
    }

    /// The shard owning global row `row`.
    #[inline]
    pub fn shard_of(&self, row: u32) -> usize {
        debug_assert!((row as usize) < self.num_rows());
        self.starts.partition_point(|&s| s <= row) - 1
    }
}

/// Attribute metadata a transport reports: enough to build scores and
/// resolve `M0` without holding a local [`Dataset`].
#[derive(Debug, Clone, PartialEq)]
pub struct AttrMeta {
    /// The attribute's field name.
    pub name: String,
    /// The attribute's support size.
    pub support: u32,
}

/// What a doubling iteration asks every shard to count.
#[derive(Debug, Clone, PartialEq)]
pub struct CountRequest {
    /// MI target attribute whose codes pair with every live candidate
    /// (`None` for entropy queries).
    pub target: Option<AttrIndex>,
    /// The still-live attributes, in state order. Per-shard results align
    /// with this list.
    pub live: Vec<AttrIndex>,
}

/// One shard's integer count deltas for one doubling iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCounts {
    /// Target-attribute histogram (`Some` iff the request had a target).
    pub target: Option<CountState>,
    /// Per-live-attribute marginal histograms, aligned with
    /// [`CountRequest::live`].
    pub attrs: Vec<CountState>,
    /// Per-live-attribute joint deltas, aligned with
    /// [`CountRequest::live`] (empty histograms for entropy queries).
    pub joints: Vec<PairCountState>,
}

/// A source of per-shard count deltas the adaptive loops can drive.
///
/// Implementations own the global sampler: `advance(m, req)` grows the
/// union sample to `m` rows and returns, per shard, the integer count
/// deltas of the newly sampled rows that shard owns. The engine merges
/// the shard deltas ([`Phase::ShardMerge`]) and applies them canonically,
/// so any implementation that returns correct integer counts — local
/// slices or remote peers — yields bitwise-identical query results.
pub trait ShardTransport {
    /// Rows in the union population `N`.
    fn num_rows(&self) -> usize;

    /// Attribute metadata (shared by all shards; shards of one logical
    /// dataset must agree on names and supports).
    fn attrs(&self) -> &[AttrMeta];

    /// Number of shards `advance` reports on.
    fn num_shards(&self) -> usize;

    /// Grows the global sample to `m_target` rows and counts the delta.
    fn advance(
        &mut self,
        m_target: usize,
        req: &CountRequest,
    ) -> Result<Vec<ShardCounts>, SwopeError>;
}

fn dataset_meta(dataset: &Dataset) -> Vec<AttrMeta> {
    dataset
        .schema()
        .fields()
        .iter()
        .map(|f| AttrMeta { name: f.name().to_owned(), support: f.support() })
        .collect()
}

fn meta_max_support(meta: &[AttrMeta]) -> u32 {
    meta.iter().map(|m| m.support).max().unwrap_or(0)
}

fn row_seed(config: &SwopeConfig) -> Result<u64, SwopeError> {
    match config.sampling {
        SamplingStrategy::Row { seed } => Ok(seed),
        SamplingStrategy::Page { .. } => Err(SwopeError::ShardedPageSampling),
    }
}

/// In-process [`ShardTransport`]: row shards of one resident [`Dataset`],
/// counted in parallel on an [`Executor`].
///
/// Holds the one global [`PrefixShuffle`]; every `advance` partitions the
/// sample delta by [`ShardPlan::shard_of`] into reusable per-shard row
/// lists and fans one count job per `(shard, live attribute)` out on the
/// executor.
pub struct LocalShardSource<'a> {
    dataset: &'a Dataset,
    exec: &'a Executor,
    plan: ShardPlan,
    meta: Vec<AttrMeta>,
    sampler: PrefixShuffle,
    shard_rows: Vec<Vec<u32>>,
    shard_tcodes: Vec<Vec<Code>>,
}

impl<'a> LocalShardSource<'a> {
    /// A shard source over `dataset` split into `shards` contiguous row
    /// shards, sampling with `config`'s row seed.
    ///
    /// # Errors
    ///
    /// [`SwopeError::ShardedPageSampling`] if `config` asks for
    /// page-granular sampling.
    pub fn new(
        dataset: &'a Dataset,
        shards: usize,
        config: &SwopeConfig,
        exec: &'a Executor,
    ) -> Result<Self, SwopeError> {
        let seed = row_seed(config)?;
        let n = dataset.num_rows();
        let plan = ShardPlan::new(n, shards);
        let s = plan.num_shards();
        Ok(Self {
            dataset,
            exec,
            meta: dataset_meta(dataset),
            sampler: PrefixShuffle::new(n, seed),
            shard_rows: vec![Vec::new(); s],
            shard_tcodes: vec![Vec::new(); s],
            plan,
        })
    }

    /// The shard plan in use.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }
}

struct CountJob<'d> {
    column: &'d Column,
    rows: &'d [u32],
    tcodes: Option<&'d [Code]>,
    out: CountState,
    pairs: PairCountState,
}

impl ShardTransport for LocalShardSource<'_> {
    fn num_rows(&self) -> usize {
        self.dataset.num_rows()
    }

    fn attrs(&self) -> &[AttrMeta] {
        &self.meta
    }

    fn num_shards(&self) -> usize {
        self.plan.num_shards()
    }

    fn advance(
        &mut self,
        m_target: usize,
        req: &CountRequest,
    ) -> Result<Vec<ShardCounts>, SwopeError> {
        for rows in &mut self.shard_rows {
            rows.clear();
        }
        let delta = self.sampler.grow_to(m_target);
        for &r in delta {
            self.shard_rows[self.plan.shard_of(r)].push(r);
        }

        let num_shards = self.plan.num_shards();
        // Gather target codes and count the target marginal per shard
        // first; every candidate job zips against its shard's codes.
        let mut targets: Vec<Option<CountState>> = (0..num_shards).map(|_| None).collect();
        if let Some(t) = req.target {
            let support = self.meta[t].support;
            let column = self.dataset.column(t);
            for (s_i, target) in targets.iter_mut().enumerate() {
                let rows = &self.shard_rows[s_i];
                let tcodes = &mut self.shard_tcodes[s_i];
                tcodes.clear();
                tcodes.reserve(rows.len());
                let mut counts = CountState::new(support);
                match column.storage() {
                    ColumnStorage::Heap(packed) => for_packed!(packed.codes(), |codes| {
                        for &r in rows {
                            let c = codes[r as usize].widen();
                            counts.add(c);
                            tcodes.push(c);
                        }
                    }),
                    ColumnStorage::Paged(paged) => {
                        let mut cur = paged.cursor();
                        for &r in rows {
                            let c = cur.code(r as usize);
                            counts.add(c);
                            tcodes.push(c);
                        }
                    }
                }
                *target = Some(counts);
            }
        }

        let live = req.live.len();
        let mut jobs: Vec<CountJob<'_>> = Vec::with_capacity(num_shards * live);
        for s_i in 0..num_shards {
            for &attr in &req.live {
                jobs.push(CountJob {
                    column: self.dataset.column(attr),
                    rows: &self.shard_rows[s_i],
                    tcodes: req.target.map(|_| self.shard_tcodes[s_i].as_slice()),
                    out: CountState::new(self.meta[attr].support),
                    pairs: PairCountState::new(),
                });
            }
        }
        self.exec.for_each_mut(&mut jobs, |job| match job.column.storage() {
            ColumnStorage::Heap(packed) => {
                for_packed!(packed.codes(), |codes| match job.tcodes {
                    Some(tcodes) => {
                        for (&r, &tc) in job.rows.iter().zip(tcodes) {
                            let c = codes[r as usize].widen();
                            job.out.add(c);
                            job.pairs.add(tc, c);
                        }
                    }
                    None => {
                        for &r in job.rows {
                            job.out.add(codes[r as usize].widen());
                        }
                    }
                })
            }
            ColumnStorage::Paged(paged) => {
                let mut cur = paged.cursor();
                match job.tcodes {
                    Some(tcodes) => {
                        for (&r, &tc) in job.rows.iter().zip(tcodes) {
                            let c = cur.code(r as usize);
                            job.out.add(c);
                            job.pairs.add(tc, c);
                        }
                    }
                    None => {
                        for &r in job.rows {
                            job.out.add(cur.code(r as usize));
                        }
                    }
                }
            }
        });

        let mut out = Vec::with_capacity(num_shards);
        let mut jobs = jobs.into_iter();
        for target in targets {
            let mut attrs = Vec::with_capacity(live);
            let mut joints = Vec::with_capacity(live);
            for _ in 0..live {
                let job = jobs.next().expect("one job per (shard, live attr)");
                attrs.push(job.out);
                joints.push(job.pairs);
            }
            out.push(ShardCounts { target, attrs, joints });
        }
        Ok(out)
    }
}

/// Folds all shards' deltas into the first shard's and applies them to
/// the entropy states in canonical order. Returns the merged shard count
/// for sanity checks.
fn merge_apply_entropy(
    shards: Vec<ShardCounts>,
    states: &mut [EntropyState],
) -> Result<(), SwopeError> {
    let mut iter = shards.into_iter();
    let mut acc =
        iter.next().ok_or_else(|| SwopeError::Transport("no shard counts returned".into()))?;
    for sh in iter {
        for (a, b) in acc.attrs.iter_mut().zip(&sh.attrs) {
            a.merge(b);
        }
    }
    if acc.attrs.len() != states.len() {
        return Err(SwopeError::Transport(format!(
            "shard returned {} attribute deltas, engine expected {}",
            acc.attrs.len(),
            states.len()
        )));
    }
    for (st, delta) in states.iter_mut().zip(acc.attrs.iter_mut()) {
        st.apply_delta(delta);
    }
    Ok(())
}

/// MI form of [`merge_apply_entropy`]: also merges the target marginal
/// and the per-candidate joint deltas.
fn merge_apply_mi(
    shards: Vec<ShardCounts>,
    target: &mut TargetState,
    states: &mut [MiState],
) -> Result<(), SwopeError> {
    let mut iter = shards.into_iter();
    let mut acc =
        iter.next().ok_or_else(|| SwopeError::Transport("no shard counts returned".into()))?;
    for sh in iter {
        if let (Some(t), Some(o)) = (acc.target.as_mut(), sh.target.as_ref()) {
            t.merge(o);
        }
        for (a, b) in acc.attrs.iter_mut().zip(&sh.attrs) {
            a.merge(b);
        }
        for (a, b) in acc.joints.iter_mut().zip(&sh.joints) {
            a.merge(b);
        }
    }
    if acc.attrs.len() != states.len() || acc.joints.len() != states.len() {
        return Err(SwopeError::Transport(format!(
            "shard returned {}/{} candidate deltas, engine expected {}",
            acc.attrs.len(),
            acc.joints.len(),
            states.len()
        )));
    }
    let mut tdelta = acc
        .target
        .ok_or_else(|| SwopeError::Transport("shard omitted the target histogram".into()))?;
    target.apply_delta(&mut tdelta);
    for (st, (delta, joint)) in
        states.iter_mut().zip(acc.attrs.iter_mut().zip(acc.joints.iter_mut()))
    {
        st.apply_delta(delta, joint);
    }
    Ok(())
}

fn entropy_score(meta: &[AttrMeta], st: &EntropyState, retired_iteration: usize) -> AttrScore {
    AttrScore {
        attr: st.attr,
        name: meta.get(st.attr).map(|m| m.name.clone()).unwrap_or_default(),
        estimate: st.bounds.point_estimate(),
        lower: st.bounds.lower,
        upper: st.bounds.upper,
        retired_iteration,
    }
}

fn mi_score(meta: &[AttrMeta], st: &MiState, retired_iteration: usize) -> AttrScore {
    AttrScore {
        attr: st.attr,
        name: meta.get(st.attr).map(|m| m.name.clone()).unwrap_or_default(),
        estimate: st.bounds.point_estimate(),
        lower: st.bounds.lower,
        upper: st.bounds.upper,
        retired_iteration,
    }
}

fn live_request(states: &[EntropyState]) -> CountRequest {
    CountRequest { target: None, live: states.iter().map(|st| st.attr).collect() }
}

fn live_request_mi(target: AttrIndex, states: &[MiState]) -> CountRequest {
    CountRequest { target: Some(target), live: states.iter().map(|st| st.attr).collect() }
}

/// Shard-parallel [`crate::entropy_top_k`], generic over the transport.
///
/// Bitwise identical to the unsharded call for any transport that
/// reports the same population (see the module docs for the argument).
pub fn entropy_top_k_transport<T: ShardTransport, O: QueryObserver>(
    transport: &mut T,
    k: usize,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<TopKResult, SwopeError> {
    config.validate()?;
    row_seed(config)?;
    let meta: Vec<AttrMeta> = transport.attrs().to_vec();
    let h = meta.len();
    let n = transport.num_rows();
    if h == 0 || n == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    if k == 0 || k > h {
        return Err(SwopeError::InvalidK { k, candidates: h });
    }
    let epsilon = config.epsilon;
    let p_f = config.resolve_p_f_rows(n);
    let m0 = config.resolve_m0_meta(n, h, meta_max_support(&meta), p_f);
    let schedule = DoublingSchedule::new(n, m0);
    let p_prime = p_f / (schedule.i_max() as f64 * h as f64);

    let mut states: Vec<EntropyState> = meta
        .iter()
        .enumerate()
        .map(|(attr, am)| EntropyState::with_support(attr, am.support))
        .collect();
    let mut it = Instrumented::start(observer, QueryKind::EntropyTopK, h, n, config);
    it.setup(0, None);

    let mut sampled = 0usize;
    let mut m_target = schedule.m0();
    loop {
        it.begin_iteration();
        let m = m_target.min(n);
        let req = live_request(&states);
        let span = it.phase_start();
        let shards = transport.advance(m, &req)?;
        it.phase_end(Phase::Ingest, span);
        let delta_len = m - sampled;
        sampled = m;
        let lam = lambda(m as u64, n as u64, p_prime);
        let live = states.len();
        it.iteration(m, live, lam);
        it.record_work(delta_len, live, WorkKind::EntropyMarginals);

        let span = it.phase_start();
        merge_apply_entropy(shards, &mut states)?;
        it.phase_end(Phase::ShardMerge, span);
        let span = it.phase_start();
        exec.for_each_mut(&mut states, |st| {
            st.update_bounds(n as u64, p_prime);
        });
        it.phase_end(Phase::UpdateBounds, span);

        let span = it.phase_start();
        let by_upper = top_k_indices(&states, k, |st| st.bounds.upper);
        let kth_upper = states[by_upper[k - 1]].bounds.upper;
        let b_max = by_upper.iter().map(|&i| states[i].bounds.bias).fold(0.0f64, f64::max);

        let stop = kth_upper > 0.0 && (kth_upper - 2.0 * lam - b_max) / kth_upper >= 1.0 - epsilon;
        if stop || m >= n {
            it.phase_end(Phase::Decide, span);
            for st in &states {
                it.attr_retired(st.attr, st.bounds.lower, st.bounds.upper);
            }
            let retired_iteration = it.current_iteration();
            let top = by_upper
                .iter()
                .map(|&i| entropy_score(&meta, &states[i], retired_iteration))
                .collect();
            let converged_early = stop && m < n;
            return Ok(TopKResult { top, stats: it.finish(converged_early) });
        }

        let by_lower = top_k_indices(&states, k, |st| st.bounds.lower);
        let kth_lower = states[by_lower[k - 1]].bounds.lower;
        states.retain(|st| {
            let keep = st.bounds.upper >= kth_lower;
            if !keep {
                it.attr_retired(st.attr, st.bounds.lower, st.bounds.upper);
            }
            keep
        });
        it.phase_end(Phase::Decide, span);

        m_target = (m * 2).min(n);
    }
}

/// Shard-parallel [`crate::entropy_filter`], generic over the transport.
pub fn entropy_filter_transport<T: ShardTransport, O: QueryObserver>(
    transport: &mut T,
    eta: f64,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<FilterResult, SwopeError> {
    config.validate()?;
    row_seed(config)?;
    if !eta.is_finite() || eta < 0.0 {
        return Err(SwopeError::InvalidThreshold(eta));
    }
    let meta: Vec<AttrMeta> = transport.attrs().to_vec();
    let h = meta.len();
    let n = transport.num_rows();
    if h == 0 || n == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    let epsilon = config.epsilon;
    let p_f = config.resolve_p_f_rows(n);
    let m0 = config.resolve_m0_meta(n, h, meta_max_support(&meta), p_f);
    let schedule = DoublingSchedule::new(n, m0);
    let p_prime = p_f / (schedule.i_max() as f64 * h as f64);

    let mut states: Vec<EntropyState> = meta
        .iter()
        .enumerate()
        .map(|(attr, am)| EntropyState::with_support(attr, am.support))
        .collect();
    let mut accepted: Vec<AttrScore> = Vec::new();
    let mut it = Instrumented::start(observer, QueryKind::EntropyFilter, h, n, config);
    it.setup(0, None);

    let mut converged_early = false;
    let mut sampled = 0usize;
    let mut m_target = schedule.m0();
    while !states.is_empty() {
        it.begin_iteration();
        let m = m_target.min(n);
        let req = live_request(&states);
        let span = it.phase_start();
        let shards = transport.advance(m, &req)?;
        it.phase_end(Phase::Ingest, span);
        let delta_len = m - sampled;
        sampled = m;
        let live = states.len();
        it.iteration(m, live, lambda(m as u64, n as u64, p_prime));
        it.record_work(delta_len, live, WorkKind::EntropyMarginals);

        let span = it.phase_start();
        merge_apply_entropy(shards, &mut states)?;
        it.phase_end(Phase::ShardMerge, span);
        let span = it.phase_start();
        exec.for_each_mut(&mut states, |st| {
            st.update_bounds(n as u64, p_prime);
        });
        it.phase_end(Phase::UpdateBounds, span);

        let span = it.phase_start();
        states.retain(|st| {
            let b = &st.bounds;
            if b.width() < 2.0 * epsilon * eta {
                let iter = it.attr_retired(st.attr, b.lower, b.upper);
                if b.point_estimate() >= eta {
                    accepted.push(entropy_score(&meta, st, iter));
                }
                false
            } else if b.lower >= (1.0 - epsilon) * eta {
                let iter = it.attr_retired(st.attr, b.lower, b.upper);
                accepted.push(entropy_score(&meta, st, iter));
                false
            } else if b.upper >= (1.0 + epsilon) * eta {
                true
            } else {
                it.attr_retired(st.attr, b.lower, b.upper);
                false
            }
        });

        if states.is_empty() {
            converged_early = m < n;
            it.phase_end(Phase::Decide, span);
            break;
        }
        if m >= n {
            for st in states.drain(..) {
                let iter = it.attr_retired(st.attr, st.bounds.lower, st.bounds.upper);
                if st.sample_entropy() >= eta {
                    accepted.push(entropy_score(&meta, &st, iter));
                }
            }
            it.phase_end(Phase::Decide, span);
            break;
        }
        it.phase_end(Phase::Decide, span);
        m_target = (m * 2).min(n);
    }

    accepted.sort_by(|a, b| {
        b.estimate
            .partial_cmp(&a.estimate)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.attr.cmp(&b.attr))
    });
    Ok(FilterResult { accepted, stats: it.finish(converged_early) })
}

/// Shard-parallel [`crate::entropy_profile`], generic over the transport.
pub fn entropy_profile_transport<T: ShardTransport, O: QueryObserver>(
    transport: &mut T,
    floor: f64,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<ProfileResult, SwopeError> {
    config.validate()?;
    row_seed(config)?;
    if !floor.is_finite() || floor < 0.0 {
        return Err(SwopeError::InvalidThreshold(floor));
    }
    let meta: Vec<AttrMeta> = transport.attrs().to_vec();
    let h = meta.len();
    let n = transport.num_rows();
    if h == 0 || n == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    let epsilon = config.epsilon;
    let p_f = config.resolve_p_f_rows(n);
    let m0 = config.resolve_m0_meta(n, h, meta_max_support(&meta), p_f);
    let schedule = DoublingSchedule::new(n, m0);
    let p_prime = p_f / (schedule.i_max() as f64 * h as f64);

    let mut states: Vec<EntropyState> = meta
        .iter()
        .enumerate()
        .map(|(attr, am)| EntropyState::with_support(attr, am.support))
        .collect();
    let mut done: Vec<AttrScore> = Vec::new();
    let mut it = Instrumented::start(observer, QueryKind::EntropyProfile, h, n, config);
    it.setup(0, None);

    let mut converged_early = false;
    let mut sampled = 0usize;
    let mut m_target = schedule.m0();
    while !states.is_empty() {
        it.begin_iteration();
        let m = m_target.min(n);
        let req = live_request(&states);
        let span = it.phase_start();
        let shards = transport.advance(m, &req)?;
        it.phase_end(Phase::Ingest, span);
        let delta_len = m - sampled;
        sampled = m;
        let live = states.len();
        it.iteration(m, live, lambda(m as u64, n as u64, p_prime));
        it.record_work(delta_len, live, WorkKind::EntropyMarginals);

        let span = it.phase_start();
        merge_apply_entropy(shards, &mut states)?;
        it.phase_end(Phase::ShardMerge, span);
        let span = it.phase_start();
        exec.for_each_mut(&mut states, |st| {
            st.update_bounds(n as u64, p_prime);
        });
        it.phase_end(Phase::UpdateBounds, span);

        let span = it.phase_start();
        let exact_now = m >= n;
        states.retain(|st| {
            let b = &st.bounds;
            let budget = (epsilon * b.point_estimate()).max(floor);
            if b.width() <= budget || exact_now {
                let iter = it.attr_retired(st.attr, b.lower, b.upper);
                done.push(entropy_score(&meta, st, iter));
                false
            } else {
                true
            }
        });
        it.phase_end(Phase::Decide, span);

        if states.is_empty() {
            converged_early = m < n;
            break;
        }
        m_target = (m * 2).min(n);
    }

    done.sort_by_key(|s| s.attr);
    Ok(ProfileResult { scores: done, stats: it.finish(converged_early) })
}

/// Shard-parallel [`crate::mi_top_k`], generic over the transport.
pub fn mi_top_k_transport<T: ShardTransport, O: QueryObserver>(
    transport: &mut T,
    target: AttrIndex,
    k: usize,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<TopKResult, SwopeError> {
    config.validate()?;
    row_seed(config)?;
    let meta: Vec<AttrMeta> = transport.attrs().to_vec();
    let h = meta.len();
    let n = transport.num_rows();
    if h == 0 || n == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    if target >= h {
        return Err(SwopeError::TargetOutOfRange { target, num_attrs: h });
    }
    if h < 2 {
        return Err(SwopeError::NoCandidates);
    }
    let candidates = h - 1;
    if k == 0 || k > candidates {
        return Err(SwopeError::InvalidK { k, candidates });
    }
    let epsilon = config.epsilon;
    let p_f = config.resolve_p_f_rows(n);
    let m0 = config.resolve_m0_meta(n, h, meta_max_support(&meta), p_f);
    let schedule = DoublingSchedule::new(n, m0);
    let p_prime = p_f / (3.0 * schedule.i_max() as f64 * candidates as f64);

    let mut target_state = TargetState::with_support(target, meta[target].support);
    let u_t = target_state.support;
    let mut states: Vec<MiState> =
        (0..h).filter(|&a| a != target).map(|a| MiState::new(a, u_t, meta[a].support)).collect();
    let mut it = Instrumented::start(observer, QueryKind::MiTopK, h, n, config);
    it.setup(0, None);

    let mut sampled = 0usize;
    let mut m_target = schedule.m0();
    loop {
        it.begin_iteration();
        let m = m_target.min(n);
        let req = live_request_mi(target, &states);
        let span = it.phase_start();
        let shards = transport.advance(m, &req)?;
        it.phase_end(Phase::Ingest, span);
        let delta_len = m - sampled;
        sampled = m;
        let lam = lambda(m as u64, n as u64, p_prime);
        let live = states.len();
        it.iteration(m, live, lam);
        it.record_work(delta_len, live, WorkKind::MiPerTarget);

        let span = it.phase_start();
        merge_apply_mi(shards, &mut target_state, &mut states)?;
        it.phase_end(Phase::ShardMerge, span);
        let span = it.phase_start();
        let h_t = target_state.sample_entropy();
        exec.for_each_mut(&mut states, |st| {
            st.update_bounds(h_t, u_t, n as u64, p_prime);
        });
        it.phase_end(Phase::UpdateBounds, span);

        let span = it.phase_start();
        let by_upper = top_k_indices(&states, k, |st| st.bounds.upper);
        let kth_upper = states[by_upper[k - 1]].bounds.upper;
        let b_max = by_upper.iter().map(|&i| states[i].bounds.bias_total).fold(0.0f64, f64::max);

        let stop = kth_upper > 0.0 && (kth_upper - 6.0 * lam - b_max) / kth_upper >= 1.0 - epsilon;
        if stop || m >= n {
            it.phase_end(Phase::Decide, span);
            for st in &states {
                it.attr_retired(st.attr, st.bounds.lower, st.bounds.upper);
            }
            let retired_iteration = it.current_iteration();
            let top =
                by_upper.iter().map(|&i| mi_score(&meta, &states[i], retired_iteration)).collect();
            let converged_early = stop && m < n;
            return Ok(TopKResult { top, stats: it.finish(converged_early) });
        }

        let by_lower = top_k_indices(&states, k, |st| st.bounds.lower);
        let kth_lower = states[by_lower[k - 1]].bounds.lower;
        states.retain(|st| {
            let keep = st.bounds.upper >= kth_lower;
            if !keep {
                it.attr_retired(st.attr, st.bounds.lower, st.bounds.upper);
            }
            keep
        });
        it.phase_end(Phase::Decide, span);

        m_target = (m * 2).min(n);
    }
}

/// Shard-parallel [`crate::mi_filter`], generic over the transport.
pub fn mi_filter_transport<T: ShardTransport, O: QueryObserver>(
    transport: &mut T,
    target: AttrIndex,
    eta: f64,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<FilterResult, SwopeError> {
    config.validate()?;
    row_seed(config)?;
    if !eta.is_finite() || eta < 0.0 {
        return Err(SwopeError::InvalidThreshold(eta));
    }
    let meta: Vec<AttrMeta> = transport.attrs().to_vec();
    let h = meta.len();
    let n = transport.num_rows();
    if h == 0 || n == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    if target >= h {
        return Err(SwopeError::TargetOutOfRange { target, num_attrs: h });
    }
    if h < 2 {
        return Err(SwopeError::NoCandidates);
    }
    let candidates = h - 1;
    let epsilon = config.epsilon;
    let p_f = config.resolve_p_f_rows(n);
    let m0 = config.resolve_m0_meta(n, h, meta_max_support(&meta), p_f);
    let schedule = DoublingSchedule::new(n, m0);
    let p_prime = p_f / (3.0 * schedule.i_max() as f64 * candidates as f64);

    let mut target_state = TargetState::with_support(target, meta[target].support);
    let u_t = target_state.support;
    let mut states: Vec<MiState> =
        (0..h).filter(|&a| a != target).map(|a| MiState::new(a, u_t, meta[a].support)).collect();
    let mut accepted: Vec<AttrScore> = Vec::new();
    let mut it = Instrumented::start(observer, QueryKind::MiFilter, h, n, config);
    it.setup(0, None);

    let mut converged_early = false;
    let mut sampled = 0usize;
    let mut m_target = schedule.m0();
    while !states.is_empty() {
        it.begin_iteration();
        let m = m_target.min(n);
        let req = live_request_mi(target, &states);
        let span = it.phase_start();
        let shards = transport.advance(m, &req)?;
        it.phase_end(Phase::Ingest, span);
        let delta_len = m - sampled;
        sampled = m;
        let live = states.len();
        it.iteration(m, live, lambda(m as u64, n as u64, p_prime));
        it.record_work(delta_len, live, WorkKind::MiPerTarget);

        let span = it.phase_start();
        merge_apply_mi(shards, &mut target_state, &mut states)?;
        it.phase_end(Phase::ShardMerge, span);
        let span = it.phase_start();
        let h_t = target_state.sample_entropy();
        exec.for_each_mut(&mut states, |st| {
            st.update_bounds(h_t, u_t, n as u64, p_prime);
        });
        it.phase_end(Phase::UpdateBounds, span);

        let span = it.phase_start();
        states.retain(|st| {
            let b = &st.bounds;
            if b.width() < 2.0 * epsilon * eta {
                let iter = it.attr_retired(st.attr, b.lower, b.upper);
                if b.point_estimate() >= eta {
                    accepted.push(mi_score(&meta, st, iter));
                }
                false
            } else if b.lower >= (1.0 - epsilon) * eta {
                let iter = it.attr_retired(st.attr, b.lower, b.upper);
                accepted.push(mi_score(&meta, st, iter));
                false
            } else if b.upper >= (1.0 + epsilon) * eta {
                true
            } else {
                it.attr_retired(st.attr, b.lower, b.upper);
                false
            }
        });

        if states.is_empty() {
            converged_early = m < n;
            it.phase_end(Phase::Decide, span);
            break;
        }
        if m >= n {
            for st in states.drain(..) {
                let iter = it.attr_retired(st.attr, st.bounds.lower, st.bounds.upper);
                let exact_mi = (target_state.sample_entropy() + st.sample_entropy()
                    - st.sample_joint_entropy())
                .max(0.0);
                if exact_mi >= eta {
                    accepted.push(mi_score(&meta, &st, iter));
                }
            }
            it.phase_end(Phase::Decide, span);
            break;
        }
        it.phase_end(Phase::Decide, span);
        m_target = (m * 2).min(n);
    }

    accepted.sort_by(|a, b| {
        b.estimate
            .partial_cmp(&a.estimate)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.attr.cmp(&b.attr))
    });
    Ok(FilterResult { accepted, stats: it.finish(converged_early) })
}

/// Shard-parallel [`crate::mi_profile`], generic over the transport.
pub fn mi_profile_transport<T: ShardTransport, O: QueryObserver>(
    transport: &mut T,
    target: AttrIndex,
    floor: f64,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<ProfileResult, SwopeError> {
    config.validate()?;
    row_seed(config)?;
    if !floor.is_finite() || floor < 0.0 {
        return Err(SwopeError::InvalidThreshold(floor));
    }
    let meta: Vec<AttrMeta> = transport.attrs().to_vec();
    let h = meta.len();
    let n = transport.num_rows();
    if h == 0 || n == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    if target >= h {
        return Err(SwopeError::TargetOutOfRange { target, num_attrs: h });
    }
    if h < 2 {
        return Err(SwopeError::NoCandidates);
    }
    let candidates = h - 1;
    let epsilon = config.epsilon;
    let p_f = config.resolve_p_f_rows(n);
    let m0 = config.resolve_m0_meta(n, h, meta_max_support(&meta), p_f);
    let schedule = DoublingSchedule::new(n, m0);
    let p_prime = p_f / (3.0 * schedule.i_max() as f64 * candidates as f64);

    let mut target_state = TargetState::with_support(target, meta[target].support);
    let u_t = target_state.support;
    let mut states: Vec<MiState> =
        (0..h).filter(|&a| a != target).map(|a| MiState::new(a, u_t, meta[a].support)).collect();
    let mut done: Vec<AttrScore> = Vec::new();
    let mut it = Instrumented::start(observer, QueryKind::MiProfile, h, n, config);
    it.setup(0, None);

    let mut converged_early = false;
    let mut sampled = 0usize;
    let mut m_target = schedule.m0();
    while !states.is_empty() {
        it.begin_iteration();
        let m = m_target.min(n);
        let req = live_request_mi(target, &states);
        let span = it.phase_start();
        let shards = transport.advance(m, &req)?;
        it.phase_end(Phase::Ingest, span);
        let delta_len = m - sampled;
        sampled = m;
        let live = states.len();
        it.iteration(m, live, lambda(m as u64, n as u64, p_prime));
        it.record_work(delta_len, live, WorkKind::MiPerTarget);

        let span = it.phase_start();
        merge_apply_mi(shards, &mut target_state, &mut states)?;
        it.phase_end(Phase::ShardMerge, span);
        let span = it.phase_start();
        let h_t = target_state.sample_entropy();
        exec.for_each_mut(&mut states, |st| {
            st.update_bounds(h_t, u_t, n as u64, p_prime);
        });
        it.phase_end(Phase::UpdateBounds, span);

        let span = it.phase_start();
        let exact_now = m >= n;
        states.retain(|st| {
            let b = &st.bounds;
            let budget = (epsilon * b.point_estimate()).max(floor);
            if b.width() <= budget || exact_now {
                let iter = it.attr_retired(st.attr, b.lower, b.upper);
                done.push(mi_score(&meta, st, iter));
                false
            } else {
                true
            }
        });
        it.phase_end(Phase::Decide, span);

        if states.is_empty() {
            converged_early = m < n;
            break;
        }
        m_target = (m * 2).min(n);
    }

    done.sort_by_key(|s| s.attr);
    Ok(ProfileResult { scores: done, stats: it.finish(converged_early) })
}

/// [`crate::entropy_top_k`] over `shards` in-process row shards.
///
/// Bitwise identical to the unsharded call for every shard count.
pub fn entropy_top_k_sharded(
    dataset: &Dataset,
    k: usize,
    shards: usize,
    config: &SwopeConfig,
) -> Result<TopKResult, SwopeError> {
    entropy_top_k_sharded_exec(
        dataset,
        k,
        shards,
        config,
        &mut NoopObserver,
        &Executor::new(config.threads),
    )
}

/// [`entropy_top_k_sharded`] with an observer and injected [`Executor`].
pub fn entropy_top_k_sharded_exec<O: QueryObserver>(
    dataset: &Dataset,
    k: usize,
    shards: usize,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<TopKResult, SwopeError> {
    config.validate()?;
    let mut source = LocalShardSource::new(dataset, shards, config, exec)?;
    entropy_top_k_transport(&mut source, k, config, observer, exec)
}

/// [`crate::entropy_filter`] over `shards` in-process row shards.
pub fn entropy_filter_sharded(
    dataset: &Dataset,
    eta: f64,
    shards: usize,
    config: &SwopeConfig,
) -> Result<FilterResult, SwopeError> {
    entropy_filter_sharded_exec(
        dataset,
        eta,
        shards,
        config,
        &mut NoopObserver,
        &Executor::new(config.threads),
    )
}

/// [`entropy_filter_sharded`] with an observer and injected [`Executor`].
pub fn entropy_filter_sharded_exec<O: QueryObserver>(
    dataset: &Dataset,
    eta: f64,
    shards: usize,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<FilterResult, SwopeError> {
    config.validate()?;
    let mut source = LocalShardSource::new(dataset, shards, config, exec)?;
    entropy_filter_transport(&mut source, eta, config, observer, exec)
}

/// [`crate::entropy_profile`] over `shards` in-process row shards.
pub fn entropy_profile_sharded(
    dataset: &Dataset,
    floor: f64,
    shards: usize,
    config: &SwopeConfig,
) -> Result<ProfileResult, SwopeError> {
    entropy_profile_sharded_exec(
        dataset,
        floor,
        shards,
        config,
        &mut NoopObserver,
        &Executor::new(config.threads),
    )
}

/// [`entropy_profile_sharded`] with an observer and injected [`Executor`].
pub fn entropy_profile_sharded_exec<O: QueryObserver>(
    dataset: &Dataset,
    floor: f64,
    shards: usize,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<ProfileResult, SwopeError> {
    config.validate()?;
    let mut source = LocalShardSource::new(dataset, shards, config, exec)?;
    entropy_profile_transport(&mut source, floor, config, observer, exec)
}

/// [`crate::mi_top_k`] over `shards` in-process row shards.
pub fn mi_top_k_sharded(
    dataset: &Dataset,
    target: AttrIndex,
    k: usize,
    shards: usize,
    config: &SwopeConfig,
) -> Result<TopKResult, SwopeError> {
    mi_top_k_sharded_exec(
        dataset,
        target,
        k,
        shards,
        config,
        &mut NoopObserver,
        &Executor::new(config.threads),
    )
}

/// [`mi_top_k_sharded`] with an observer and injected [`Executor`].
#[allow(clippy::too_many_arguments)]
pub fn mi_top_k_sharded_exec<O: QueryObserver>(
    dataset: &Dataset,
    target: AttrIndex,
    k: usize,
    shards: usize,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<TopKResult, SwopeError> {
    config.validate()?;
    let mut source = LocalShardSource::new(dataset, shards, config, exec)?;
    mi_top_k_transport(&mut source, target, k, config, observer, exec)
}

/// [`crate::mi_filter`] over `shards` in-process row shards.
pub fn mi_filter_sharded(
    dataset: &Dataset,
    target: AttrIndex,
    eta: f64,
    shards: usize,
    config: &SwopeConfig,
) -> Result<FilterResult, SwopeError> {
    mi_filter_sharded_exec(
        dataset,
        target,
        eta,
        shards,
        config,
        &mut NoopObserver,
        &Executor::new(config.threads),
    )
}

/// [`mi_filter_sharded`] with an observer and injected [`Executor`].
#[allow(clippy::too_many_arguments)]
pub fn mi_filter_sharded_exec<O: QueryObserver>(
    dataset: &Dataset,
    target: AttrIndex,
    eta: f64,
    shards: usize,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<FilterResult, SwopeError> {
    config.validate()?;
    let mut source = LocalShardSource::new(dataset, shards, config, exec)?;
    mi_filter_transport(&mut source, target, eta, config, observer, exec)
}

/// [`crate::mi_profile`] over `shards` in-process row shards.
pub fn mi_profile_sharded(
    dataset: &Dataset,
    target: AttrIndex,
    floor: f64,
    shards: usize,
    config: &SwopeConfig,
) -> Result<ProfileResult, SwopeError> {
    mi_profile_sharded_exec(
        dataset,
        target,
        floor,
        shards,
        config,
        &mut NoopObserver,
        &Executor::new(config.threads),
    )
}

/// [`mi_profile_sharded`] with an observer and injected [`Executor`].
#[allow(clippy::too_many_arguments)]
pub fn mi_profile_sharded_exec<O: QueryObserver>(
    dataset: &Dataset,
    target: AttrIndex,
    floor: f64,
    shards: usize,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<ProfileResult, SwopeError> {
    config.validate()?;
    let mut source = LocalShardSource::new(dataset, shards, config, exec)?;
    mi_profile_transport(&mut source, target, floor, config, observer, exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swope_columnar::{Column, Field, Schema};
    use swope_sampling::rng::Xoshiro256pp;

    fn random_count_states(seed: u64, parts: usize, support: u32, adds: usize) -> Vec<CountState> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut states = vec![CountState::new(support); parts];
        for _ in 0..adds {
            let part = rng.next_below(parts as u64) as usize;
            let code = rng.next_below(support as u64) as u32;
            states[part].add(code);
        }
        states
    }

    #[test]
    fn count_state_merge_is_commutative() {
        let states = random_count_states(11, 2, 37, 5000);
        let (a, b) = (&states[0], &states[1]);
        let mut ab = a.clone();
        ab.merge(b);
        let mut ba = b.clone();
        ba.merge(a);
        assert_eq!(ab.sorted_entries(), ba.sorted_entries());
        assert_eq!(ab.total(), a.total() + b.total());
    }

    #[test]
    fn count_state_merge_is_associative() {
        let states = random_count_states(23, 3, 64, 8000);
        let (a, b, c) = (&states[0], &states[1], &states[2]);
        let mut left = a.clone();
        left.merge(b);
        left.merge(c);
        let mut bc = b.clone();
        bc.merge(c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.sorted_entries(), right.sorted_entries());
    }

    #[test]
    fn count_state_apply_is_merge_order_invariant() {
        // Applying (a ⊕ b) ⊕ c and (c ⊕ a) ⊕ b to fresh counters must
        // produce bitwise-identical entropies: apply_to drains in
        // canonical code order regardless of merge history.
        let states = random_count_states(5, 3, 100, 10_000);
        let (a, b, c) = (&states[0], &states[1], &states[2]);
        let mut one = a.clone();
        one.merge(b);
        one.merge(c);
        let mut two = c.clone();
        two.merge(a);
        two.merge(b);
        let mut counter_one = EntropyCounter::new(100);
        let mut counter_two = EntropyCounter::new(100);
        one.apply_to(&mut counter_one);
        two.apply_to(&mut counter_two);
        assert_eq!(counter_one.entropy().to_bits(), counter_two.entropy().to_bits());
        assert_eq!(counter_one.total(), counter_two.total());
        // apply_to drains.
        assert!(one.is_empty() && two.is_empty());
    }

    #[test]
    fn pair_count_state_merge_is_order_invariant() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let mut parts = vec![PairCountState::new(); 3];
        for _ in 0..6000 {
            let p = rng.next_below(3) as usize;
            parts[p].add(rng.next_below(8) as u32, rng.next_below(16) as u32);
        }
        let (a, b, c) = (parts[0].clone(), parts[1].clone(), parts[2].clone());
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut right = c;
        right.merge(&a);
        right.merge(&b);
        let mut j_left = JointEntropyCounter::new(8, 16);
        let mut j_right = JointEntropyCounter::new(8, 16);
        left.apply_to(&mut j_left);
        right.apply_to(&mut j_right);
        assert_eq!(j_left.entropy().to_bits(), j_right.entropy().to_bits());
    }

    #[test]
    fn shard_plan_covers_rows_exactly_once() {
        for (n, s) in [(10usize, 3usize), (7, 7), (100, 1), (5, 9), (0, 4), (64, 4)] {
            let plan = ShardPlan::new(n, s);
            assert_eq!(plan.num_rows(), n);
            let mut covered = 0usize;
            for i in 0..plan.num_shards() {
                let range = plan.range(i);
                assert_eq!(range.start, covered);
                covered = range.end;
                for r in range.clone() {
                    assert_eq!(plan.shard_of(r as u32), i, "row {r} of plan {n}/{s}");
                }
            }
            assert_eq!(covered, n);
            // Even split: sizes differ by at most one.
            let sizes: Vec<usize> = (0..plan.num_shards()).map(|i| plan.range(i).len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "uneven plan {sizes:?}");
        }
    }

    fn cyclic_dataset(n: usize, supports: &[u32]) -> Dataset {
        let fields =
            supports.iter().enumerate().map(|(i, &u)| Field::new(format!("c{i}"), u)).collect();
        let columns = supports
            .iter()
            .map(|&u| {
                Column::new(
                    (0..n)
                        .map(|r| (r as u32).wrapping_mul(2654435761u32.wrapping_add(u)) % u)
                        .collect(),
                    u,
                )
                .unwrap()
            })
            .collect();
        Dataset::new(Schema::new(fields), columns).unwrap()
    }

    #[test]
    fn sharded_top_k_matches_unsharded_bitwise() {
        let ds = cyclic_dataset(20_000, &[2, 64, 4, 256, 16]);
        let config = SwopeConfig::with_epsilon(0.1).with_seed(7);
        let reference = crate::entropy_top_k(&ds, 3, &config).unwrap();
        for shards in [1usize, 2, 3, 7] {
            let sharded = entropy_top_k_sharded(&ds, 3, shards, &config).unwrap();
            assert_eq!(sharded.top, reference.top, "shards = {shards}");
            assert_eq!(sharded.stats.sample_size, reference.stats.sample_size);
            assert_eq!(sharded.stats.iterations, reference.stats.iterations);
            assert_eq!(sharded.stats.rows_scanned, reference.stats.rows_scanned);
        }
    }

    #[test]
    fn sharded_mi_top_k_matches_unsharded_bitwise() {
        let n = 20_000;
        let target: Vec<u32> = (0..n).map(|r| (r as u32) % 4).collect();
        let copy: Vec<u32> = target.iter().map(|&c| c / 2).collect();
        let noise: Vec<u32> =
            (0..n).map(|r| ((r as u32).wrapping_mul(2654435761) >> 13) % 8).collect();
        let ds = Dataset::new(
            Schema::new(vec![Field::new("t", 4), Field::new("copy", 4), Field::new("noise", 8)]),
            vec![
                Column::new(target, 4).unwrap(),
                Column::new(copy, 4).unwrap(),
                Column::new(noise, 8).unwrap(),
            ],
        )
        .unwrap();
        let config = SwopeConfig::with_epsilon(0.4).with_seed(3);
        let reference = crate::mi_top_k(&ds, 0, 2, &config).unwrap();
        for shards in [1usize, 2, 3, 7] {
            let sharded = mi_top_k_sharded(&ds, 0, 2, shards, &config).unwrap();
            assert_eq!(sharded.top, reference.top, "shards = {shards}");
        }
    }

    #[test]
    fn page_sampling_is_rejected() {
        let ds = cyclic_dataset(1000, &[2, 8]);
        let config = SwopeConfig {
            sampling: SamplingStrategy::Page { page_rows: 64, seed: 1 },
            ..SwopeConfig::default()
        };
        assert!(matches!(
            entropy_top_k_sharded(&ds, 1, 2, &config),
            Err(SwopeError::ShardedPageSampling)
        ));
    }

    #[test]
    fn sharded_validation_matches_unsharded() {
        let ds = cyclic_dataset(100, &[2, 4]);
        let config = SwopeConfig::default();
        assert!(matches!(
            entropy_top_k_sharded(&ds, 0, 2, &config),
            Err(SwopeError::InvalidK { .. })
        ));
        assert!(matches!(
            mi_top_k_sharded(&ds, 9, 1, 2, &config),
            Err(SwopeError::TargetOutOfRange { .. })
        ));
        assert!(matches!(
            entropy_filter_sharded(&ds, f64::NAN, 2, &config),
            Err(SwopeError::InvalidThreshold(_))
        ));
    }
}
