//! Profile queries: error-bounded estimates for *every* attribute.
//!
//! The paper's queries are selective (top-k / threshold). A common
//! companion need — data-quality dashboards, feature stores — is an
//! estimate of every attribute's score with a uniform quality target.
//! The same machinery answers it: sample adaptively, and retire each
//! attribute as soon as its own interval is tight enough. Attributes
//! with wide supports retire later; near-constant ones retire almost
//! immediately, so the total cost adapts per column. This is an
//! extension beyond the paper, built from its Lemma 3/§4.1 intervals.

use swope_columnar::{AttrIndex, Dataset};
use swope_obs::{NoopObserver, Phase, QueryKind, QueryObserver};
use swope_sampling::DoublingSchedule;

use crate::exec::Executor;
use crate::observe::Instrumented;
use crate::report::{AttrScore, QueryStats, WorkKind};
use crate::scope::Population;
use crate::state::{EntropyState, GatherScratch, MiState, TargetState};
use crate::topk::attr_score;
use crate::{SwopeConfig, SwopeError};

/// Result of a profile query: one score per attribute plus statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileResult {
    /// Scores in attribute order (for MI profiles the target attribute is
    /// omitted).
    pub scores: Vec<AttrScore>,
    /// Execution statistics.
    pub stats: QueryStats,
}

/// Estimates every attribute's empirical entropy to relative error `ε`
/// (with probability `1 − p_f`).
///
/// An attribute retires when its interval width is at most
/// `max(ε·Ĥ(α), floor)`; the absolute floor (default wisdom: ~0.05 bits)
/// keeps near-zero-entropy attributes from demanding unbounded relative
/// precision. On retirement `Ĥ ∈ [H̲, H̄]` with
/// `H̄ − H̲ ≤ max(ε·Ĥ, floor)`, so `|Ĥ − H| ≤ max(ε·Ĥ, floor)`.
pub fn entropy_profile(
    dataset: &Dataset,
    floor: f64,
    config: &SwopeConfig,
) -> Result<ProfileResult, SwopeError> {
    entropy_profile_observed(dataset, floor, config, &mut NoopObserver)
}

/// [`entropy_profile`] with a [`QueryObserver`] attached.
///
/// The result is bitwise-identical to the unobserved call with the same
/// config.
pub fn entropy_profile_observed<O: QueryObserver>(
    dataset: &Dataset,
    floor: f64,
    config: &SwopeConfig,
    observer: &mut O,
) -> Result<ProfileResult, SwopeError> {
    entropy_profile_exec(dataset, floor, config, observer, &Executor::new(config.threads))
}

/// [`entropy_profile_observed`] with an injected [`Executor`].
///
/// See [`crate::exec`]: the executor supplies the (possibly shared)
/// worker pool, and results are bitwise identical for any executor.
pub fn entropy_profile_exec<O: QueryObserver>(
    dataset: &Dataset,
    floor: f64,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<ProfileResult, SwopeError> {
    config.validate()?;
    if !floor.is_finite() || floor < 0.0 {
        return Err(SwopeError::InvalidThreshold(floor));
    }
    let h = dataset.num_attrs();
    let n = dataset.num_rows();
    if h == 0 || n == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    entropy_profile_run(dataset, floor, config, observer, exec, Population::unscoped(n, config))
}

/// The adaptive loop body, generic over the sampled population (see
/// [`crate::scope`]).
pub(crate) fn entropy_profile_run<O: QueryObserver>(
    dataset: &Dataset,
    floor: f64,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
    mut pop: Population,
) -> Result<ProfileResult, SwopeError> {
    let h = dataset.num_attrs();
    let n = pop.n();
    let epsilon = config.epsilon;
    let p_f = config.resolve_p_f_rows(n);
    let m0 = config.resolve_m0_rows(dataset, n, p_f);
    let schedule = DoublingSchedule::new(n, m0);
    let p_prime = p_f / (schedule.i_max() as f64 * h as f64);

    let mut states: Vec<EntropyState> =
        (0..h).map(|attr| EntropyState::new(dataset, attr)).collect();
    pop.attach_covered(&mut states);
    let mut scratch = GatherScratch::new(h);
    let mut done: Vec<AttrScore> = Vec::new();
    let mut it = Instrumented::start(observer, QueryKind::EntropyProfile, h, n, config);
    it.setup(pop.setup_rows(), pop.setup_nanos());

    let mut converged_early = false;
    let mut m_target = schedule.m0();
    while !states.is_empty() {
        it.begin_iteration();
        let span = it.phase_start();
        let (delta_range, covered_k) = pop.grow(m_target);
        it.phase_end(Phase::SampleGrow, span);
        let m = pop.sampled();
        let delta = &pop.rows()[delta_range];
        let live = states.len();
        it.iteration(m, live, swope_estimate::bounds::lambda(m as u64, n as u64, p_prime));
        it.record_work(delta.len(), live, WorkKind::EntropyMarginals);

        let span = it.phase_start();
        exec.for_each2(&mut states, scratch.slots(live), |st, buf| {
            st.ingest_covered(covered_k);
            st.ingest_staged(dataset.column(st.attr), delta, buf);
        });
        it.phase_end(Phase::Ingest, span);
        let span = it.phase_start();
        exec.for_each_mut(&mut states, |st| {
            st.update_bounds(n as u64, p_prime);
        });
        it.phase_end(Phase::UpdateBounds, span);

        let span = it.phase_start();
        let exact_now = m >= n;
        states.retain(|st| {
            let b = &st.bounds;
            let budget = (epsilon * b.point_estimate()).max(floor);
            if b.width() <= budget || exact_now {
                let iter = it.attr_retired(st.attr, b.lower, b.upper);
                done.push(attr_score(dataset, st, iter));
                false
            } else {
                true
            }
        });
        it.phase_end(Phase::Decide, span);

        if states.is_empty() {
            converged_early = m < n;
            break;
        }
        m_target = (m * 2).min(n);
    }

    done.sort_by_key(|s| s.attr);
    Ok(ProfileResult { scores: done, stats: it.finish(converged_early) })
}

/// Estimates every candidate attribute's empirical mutual information
/// with `target` to relative error `ε` (with probability `1 − p_f`),
/// using the same retirement rule as [`entropy_profile`].
pub fn mi_profile(
    dataset: &Dataset,
    target: AttrIndex,
    floor: f64,
    config: &SwopeConfig,
) -> Result<ProfileResult, SwopeError> {
    mi_profile_observed(dataset, target, floor, config, &mut NoopObserver)
}

/// [`mi_profile`] with a [`QueryObserver`] attached.
///
/// The result is bitwise-identical to the unobserved call with the same
/// config.
pub fn mi_profile_observed<O: QueryObserver>(
    dataset: &Dataset,
    target: AttrIndex,
    floor: f64,
    config: &SwopeConfig,
    observer: &mut O,
) -> Result<ProfileResult, SwopeError> {
    mi_profile_exec(dataset, target, floor, config, observer, &Executor::new(config.threads))
}

/// [`mi_profile_observed`] with an injected [`Executor`].
///
/// See [`crate::exec`]: the executor supplies the (possibly shared)
/// worker pool, and results are bitwise identical for any executor.
pub fn mi_profile_exec<O: QueryObserver>(
    dataset: &Dataset,
    target: AttrIndex,
    floor: f64,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<ProfileResult, SwopeError> {
    config.validate()?;
    if !floor.is_finite() || floor < 0.0 {
        return Err(SwopeError::InvalidThreshold(floor));
    }
    let h = dataset.num_attrs();
    let n = dataset.num_rows();
    if h == 0 || n == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    if target >= h {
        return Err(SwopeError::TargetOutOfRange { target, num_attrs: h });
    }
    if h < 2 {
        return Err(SwopeError::NoCandidates);
    }
    mi_profile_run(dataset, target, floor, config, observer, exec, Population::unscoped(n, config))
}

/// The adaptive loop body, generic over the sampled population (see
/// [`crate::scope`]). MI populations are always physical — covered-page
/// histograms cannot synthesize joint co-occurrences.
#[allow(clippy::too_many_arguments)]
pub(crate) fn mi_profile_run<O: QueryObserver>(
    dataset: &Dataset,
    target: AttrIndex,
    floor: f64,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
    mut pop: Population,
) -> Result<ProfileResult, SwopeError> {
    let h = dataset.num_attrs();
    let n = pop.n();
    let candidates = h - 1;
    let epsilon = config.epsilon;
    let p_f = config.resolve_p_f_rows(n);
    let m0 = config.resolve_m0_rows(dataset, n, p_f);
    let schedule = DoublingSchedule::new(n, m0);
    let p_prime = p_f / (3.0 * schedule.i_max() as f64 * candidates as f64);

    let mut target_state = TargetState::new(dataset, target);
    let u_t = target_state.support;
    let mut states: Vec<MiState> =
        (0..h).filter(|&a| a != target).map(|a| MiState::new(a, u_t, dataset.support(a))).collect();
    let mut scratch = GatherScratch::new(candidates);
    let mut done: Vec<AttrScore> = Vec::new();
    let mut it = Instrumented::start(observer, QueryKind::MiProfile, h, n, config);
    it.setup(pop.setup_rows(), pop.setup_nanos());

    let mut converged_early = false;
    let mut m_target = schedule.m0();
    while !states.is_empty() {
        it.begin_iteration();
        let span = it.phase_start();
        let (delta_range, _covered) = pop.grow(m_target);
        it.phase_end(Phase::SampleGrow, span);
        let m = pop.sampled();
        let delta = &pop.rows()[delta_range];
        let live = states.len();
        it.iteration(m, live, swope_estimate::bounds::lambda(m as u64, n as u64, p_prime));
        it.record_work(delta.len(), live, WorkKind::MiPerTarget);

        let span = it.phase_start();
        let (t_buf, slots) = scratch.target_and_slots(live);
        target_state.ingest_into(dataset.column(target), delta, t_buf);
        let t_codes: &[u32] = t_buf;
        exec.for_each2(&mut states, slots, |st, buf| {
            st.ingest_staged(dataset.column(st.attr), t_codes, delta, buf);
        });
        it.phase_end(Phase::Ingest, span);
        let span = it.phase_start();
        let h_t = target_state.sample_entropy();
        exec.for_each_mut(&mut states, |st| {
            st.update_bounds(h_t, u_t, n as u64, p_prime);
        });
        it.phase_end(Phase::UpdateBounds, span);

        let span = it.phase_start();
        let exact_now = m >= n;
        states.retain(|st| {
            let b = &st.bounds;
            let budget = (epsilon * b.point_estimate()).max(floor);
            if b.width() <= budget || exact_now {
                let iter = it.attr_retired(st.attr, b.lower, b.upper);
                done.push(crate::mi_topk::mi_score(dataset, st, iter));
                false
            } else {
                true
            }
        });
        it.phase_end(Phase::Decide, span);

        if states.is_empty() {
            converged_early = m < n;
            break;
        }
        m_target = (m * 2).min(n);
    }

    done.sort_by_key(|s| s.attr);
    Ok(ProfileResult { scores: done, stats: it.finish(converged_early) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use swope_columnar::{Column, Field, Schema};
    use swope_estimate::entropy::column_entropy;
    use swope_estimate::joint::mutual_information;

    fn cyclic_dataset(n: usize, supports: &[u32]) -> Dataset {
        let fields =
            supports.iter().enumerate().map(|(i, &u)| Field::new(format!("c{i}"), u)).collect();
        let columns = supports
            .iter()
            .map(|&u| Column::new((0..n).map(|r| r as u32 % u).collect(), u).unwrap())
            .collect();
        Dataset::new(Schema::new(fields), columns).unwrap()
    }

    #[test]
    fn entropy_profile_meets_error_budget() {
        let ds = cyclic_dataset(60_000, &[2, 8, 32, 128, 512]);
        let cfg = SwopeConfig::with_epsilon(0.1);
        let floor = 0.05;
        let res = entropy_profile(&ds, floor, &cfg).unwrap();
        assert_eq!(res.scores.len(), 5);
        for s in &res.scores {
            let exact = column_entropy(ds.column(s.attr));
            let budget = (0.1 * s.estimate).max(floor);
            assert!(
                (s.estimate - exact).abs() <= budget + 1e-9,
                "attr {}: estimate {} vs exact {exact} (budget {budget})",
                s.attr,
                s.estimate
            );
        }
    }

    #[test]
    fn entropy_profile_scores_in_attr_order() {
        let ds = cyclic_dataset(5_000, &[16, 2, 64]);
        let res = entropy_profile(&ds, 0.05, &SwopeConfig::default()).unwrap();
        let attrs: Vec<usize> = res.scores.iter().map(|s| s.attr).collect();
        assert_eq!(attrs, vec![0, 1, 2]);
    }

    #[test]
    fn entropy_profile_low_entropy_attrs_retire_cheaply() {
        // One constant-ish and one wide column: the constant one must not
        // force extra sampling (it retires via the floor).
        let ds = cyclic_dataset(100_000, &[2, 512]);
        let res = entropy_profile(&ds, 0.1, &SwopeConfig::with_epsilon(0.1)).unwrap();
        assert!(res.scores[0].estimate < 1.5);
        assert!(res.scores[1].estimate > 8.0);
    }

    #[test]
    fn mi_profile_meets_error_budget() {
        // Candidate 1 is a function of the target; candidate 2 cycles
        // independently-ish.
        let n = 40_000;
        let fields = vec![Field::new("t", 8), Field::new("copy", 8), Field::new("other", 4)];
        let cols = vec![
            Column::new((0..n).map(|r| r as u32 % 8).collect(), 8).unwrap(),
            Column::new((0..n).map(|r| (r as u32 % 8) / 2).collect(), 8).unwrap(),
            Column::new(
                (0..n).map(|r| ((r as u32).wrapping_mul(2654435761) >> 13) % 4).collect(),
                4,
            )
            .unwrap(),
        ];
        let ds = Dataset::new(Schema::new(fields), cols).unwrap();
        let cfg = SwopeConfig::with_epsilon(0.5);
        let floor = 0.1;
        let res = mi_profile(&ds, 0, floor, &cfg).unwrap();
        assert_eq!(res.scores.len(), 2);
        for s in &res.scores {
            let exact = mutual_information(ds.column(0), ds.column(s.attr));
            let budget = (0.5 * s.estimate).max(floor);
            assert!(
                (s.estimate - exact).abs() <= budget + 1e-9,
                "attr {}: {} vs {exact}",
                s.attr,
                s.estimate
            );
        }
    }

    #[test]
    fn validation() {
        let ds = cyclic_dataset(100, &[2, 4]);
        let cfg = SwopeConfig::default();
        assert!(entropy_profile(&ds, -0.1, &cfg).is_err());
        assert!(mi_profile(&ds, 9, 0.1, &cfg).is_err());
    }

    #[test]
    fn profile_deterministic_and_thread_invariant() {
        let ds = cyclic_dataset(30_000, &[2, 16, 128]);
        let cfg = SwopeConfig::with_epsilon(0.2).with_seed(4);
        let a = entropy_profile(&ds, 0.05, &cfg).unwrap();
        let b = entropy_profile(&ds, 0.05, &cfg.clone().with_threads(4)).unwrap();
        assert_eq!(a, b);
    }
}
