//! Batched mutual-information top-k: many targets, one shared sample.
//!
//! The paper's MI evaluation protocol runs the top-k query against many
//! target attributes of the same dataset (20 per dataset in §6.1). Run
//! separately, each query pays to (re)sample and to (re)count every
//! candidate's *marginal* distribution. [`mi_top_k_batch`] amortizes
//! both across targets:
//!
//! * one growing permutation prefix serves every target;
//! * per-attribute marginal entropy counters are shared (`h` counters
//!   total instead of `|T|·h`);
//! * only the joint counters are per `(target, candidate)` pair, and a
//!   target stops updating its joints as soon as its own stopping rule
//!   fires.
//!
//! Each target's answer individually satisfies Definition 5 with
//! probability `1 − p_f` — the failure budget is per target, identical
//! to running [`crate::mi_top_k`] alone, because the bounds are applied
//! to the same (attribute, iteration) grid either way.

use std::time::Instant;

use swope_columnar::{AttrIndex, Code, ColumnStorage, Dataset};
use swope_estimate::bounds::{lambda, mi_bounds, MiBounds};
use swope_estimate::entropy::EntropyCounter;
use swope_estimate::joint::JointEntropyCounter;
use swope_obs::{AttrBounds, NoopObserver, Phase, QueryKind, QueryMeta, QueryObserver, RunStats};
use swope_sampling::DoublingSchedule;

use crate::exec::Executor;
use crate::report::{AttrScore, QueryStats, TopKResult, WorkKind};
use crate::state::{make_sampler, INGEST_BLOCK_ROWS};
use crate::{SwopeConfig, SwopeError};

/// One target's in-flight state.
struct TargetQuery {
    target: AttrIndex,
    /// Joint counters, one per live candidate, parallel to `candidates`.
    joints: Vec<JointEntropyCounter>,
    /// Live candidate attribute indices.
    candidates: Vec<AttrIndex>,
    /// Current bounds, parallel to `candidates`.
    bounds: Vec<MiBounds>,
    /// Set when the stopping rule fires.
    result: Option<TopKResult>,
    stats: QueryStats,
    /// Retirement events staged inside the parallel per-target pass and
    /// drained (serially) to the observer afterwards. Only filled when an
    /// observer is attached.
    retired_log: Vec<(AttrIndex, f64, f64)>,
}

/// Runs the approximate MI top-k query (Algorithm 3) for every target in
/// `targets` over a single shared sample.
///
/// Returns one [`TopKResult`] per target, in input order. Each result
/// equals in contract (not necessarily bit-for-bit, since pruning order
/// differs) what [`crate::mi_top_k`] would return: an approximate top-k
/// per Definition 5 with probability `1 − p_f`.
///
/// # Errors
///
/// Validation mirrors [`crate::mi_top_k`], applied per target; duplicate
/// targets are allowed (the duplicate work is still shared).
pub fn mi_top_k_batch(
    dataset: &Dataset,
    targets: &[AttrIndex],
    k: usize,
    config: &SwopeConfig,
) -> Result<Vec<TopKResult>, SwopeError> {
    mi_top_k_batch_observed(dataset, targets, k, config, &mut NoopObserver)
}

/// [`mi_top_k_batch`] with a [`QueryObserver`] attached.
///
/// The batch emits one observer lifecycle for the whole run
/// ([`QueryKind::MiTopKBatch`]): `iteration` events report the summed live
/// candidates across unfinished targets, and `query_end` aggregates the
/// per-target statistics. Per-target work runs inside the parallel loop,
/// so retirement events are staged per target and emitted serially after
/// each iteration. Results are bitwise-identical to the unobserved call.
pub fn mi_top_k_batch_observed<O: QueryObserver>(
    dataset: &Dataset,
    targets: &[AttrIndex],
    k: usize,
    config: &SwopeConfig,
    observer: &mut O,
) -> Result<Vec<TopKResult>, SwopeError> {
    mi_top_k_batch_exec(dataset, targets, k, config, observer, &Executor::new(config.threads))
}

/// [`mi_top_k_batch_observed`] with an injected [`Executor`].
///
/// See [`crate::exec`]: the executor supplies the (possibly shared)
/// worker pool, and results are bitwise identical for any executor.
pub fn mi_top_k_batch_exec<O: QueryObserver>(
    dataset: &Dataset,
    targets: &[AttrIndex],
    k: usize,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<Vec<TopKResult>, SwopeError> {
    config.validate()?;
    let h = dataset.num_attrs();
    let n = dataset.num_rows();
    if h == 0 || n == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    if h < 2 {
        return Err(SwopeError::NoCandidates);
    }
    if k == 0 || k > h - 1 {
        return Err(SwopeError::InvalidK { k, candidates: h - 1 });
    }
    for &t in targets {
        if t >= h {
            return Err(SwopeError::TargetOutOfRange { target: t, num_attrs: h });
        }
    }
    if targets.is_empty() {
        return Ok(Vec::new());
    }

    let epsilon = config.epsilon;
    let p_f = config.resolve_p_f(dataset);
    let m0 = config.resolve_m0(dataset, p_f);
    let schedule = DoublingSchedule::new(n, m0);
    let p_prime = p_f / (3.0 * schedule.i_max() as f64 * (h - 1) as f64);

    let mut sampler = make_sampler(n, config.sampling);
    // Shared marginal counters for every attribute (targets included:
    // a target's marginal is just another attribute's).
    let mut marginals: Vec<EntropyCounter> =
        (0..h).map(|a| EntropyCounter::new(dataset.support(a))).collect();

    let mut queries: Vec<TargetQuery> = targets
        .iter()
        .map(|&t| {
            let candidates: Vec<AttrIndex> = (0..h).filter(|&a| a != t).collect();
            let joints = candidates
                .iter()
                .map(|&a| JointEntropyCounter::new(dataset.support(t), dataset.support(a)))
                .collect();
            let bounds = vec![
                MiBounds {
                    sample_mi: 0.0,
                    lower: 0.0,
                    upper: f64::INFINITY,
                    lambda: f64::INFINITY,
                    bias_total: f64::INFINITY,
                };
                candidates.len()
            ];
            TargetQuery {
                target: t,
                joints,
                candidates,
                bounds,
                result: None,
                stats: QueryStats::default(),
                retired_log: Vec::new(),
            }
        })
        .collect();

    // Delta rows are processed in blocks: each block gathers every
    // attribute's codes into contiguous buffers exactly once, so the
    // random row-index access happens once per attribute per block and
    // every target's joint update then streams sequential memory. This is
    // where the batch API beats |T| standalone queries, which each pay
    // the random gather per candidate.
    let mut gathered: Vec<Vec<Code>> = vec![Vec::with_capacity(INGEST_BLOCK_ROWS); h];

    observer.query_start(&QueryMeta {
        kind: QueryKind::MiTopKBatch,
        num_attrs: h,
        num_rows: n,
        epsilon,
        threads: config.threads,
    });
    let observed = observer.enabled();
    let phase_start = |enabled: bool| if enabled { Some(Instant::now()) } else { None };

    let mut outer_iter = 0usize;
    let mut m_target = schedule.m0();
    loop {
        outer_iter += 1;
        let iter = outer_iter;
        let span = phase_start(observed);
        let delta_range = sampler.grow_delta(m_target);
        if let Some(s) = span {
            observer.phase(Phase::SampleGrow, iter, s.elapsed().as_nanos() as u64);
        }
        let m = sampler.sampled();
        let delta = &sampler.rows()[delta_range];
        let lam = lambda(m as u64, n as u64, p_prime);
        let live: usize =
            queries.iter().filter(|q| q.result.is_none()).map(|q| q.candidates.len()).sum();
        observer.iteration(iter, m, live, lam);

        let span = phase_start(observed);
        for block in delta.chunks(INGEST_BLOCK_ROWS) {
            for (attr, buf) in gathered.iter_mut().enumerate() {
                // Widen at gather: these buffers are shared by every query
                // whose target or candidate set touches `attr`, so they use
                // a common u32 representation; the random reads still move
                // only the column's packed width through the cache.
                match dataset.column(attr).storage() {
                    ColumnStorage::Heap(packed) => packed.codes().gather_widen(block, buf),
                    ColumnStorage::Paged(paged) => paged.gather_widen(block, buf),
                }
            }
            for (attr, counter) in marginals.iter_mut().enumerate() {
                for &c in &gathered[attr] {
                    counter.add(c);
                }
            }
            let gathered_ref = &gathered;
            exec.for_each_mut(&mut queries, |q| {
                if q.result.is_some() {
                    return;
                }
                let t_codes = &gathered_ref[q.target];
                for (idx, &attr) in q.candidates.iter().enumerate() {
                    let joint = &mut q.joints[idx];
                    for (&tc, &c) in t_codes.iter().zip(&gathered_ref[attr]) {
                        joint.add(tc, c);
                    }
                }
            });
        }
        if let Some(s) = span {
            observer.phase(Phase::Ingest, iter, s.elapsed().as_nanos() as u64);
        }

        // Per-target bound refresh (cheap arithmetic).
        let span = phase_start(observed);
        let marginal_entropies: Vec<f64> = marginals.iter().map(EntropyCounter::entropy).collect();
        exec.for_each_mut(&mut queries, |q| {
            if q.result.is_some() {
                return;
            }
            let h_t = marginal_entropies[q.target];
            let u_t = dataset.support(q.target);
            q.stats.record_iteration(m, q.candidates.len(), lam);
            q.stats.record_work(delta.len(), q.candidates.len(), WorkKind::MiSharedMarginals);
            for (idx, &attr) in q.candidates.iter().enumerate() {
                q.bounds[idx] = mi_bounds(
                    h_t,
                    marginal_entropies[attr],
                    q.joints[idx].entropy(),
                    u_t as u64,
                    dataset.support(attr) as u64,
                    m as u64,
                    n as u64,
                    p_prime,
                );
            }
        });
        if let Some(s) = span {
            observer.phase(Phase::UpdateBounds, iter, s.elapsed().as_nanos() as u64);
        }

        // Per-target stopping check + pruning.
        let span = phase_start(observed);
        exec.for_each_mut(&mut queries, |q| {
            if q.result.is_some() {
                return;
            }

            // Top-k by upper bound among live candidates.
            let mut order: Vec<usize> = (0..q.candidates.len()).collect();
            order.sort_by(|&a, &b| {
                q.bounds[b]
                    .upper
                    .partial_cmp(&q.bounds[a].upper)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(q.candidates[a].cmp(&q.candidates[b]))
            });
            let kth_upper = q.bounds[order[k - 1]].upper;
            let b_max = order[..k].iter().map(|&i| q.bounds[i].bias_total).fold(0.0f64, f64::max);
            let stop =
                kth_upper > 0.0 && (kth_upper - 6.0 * lam - b_max) / kth_upper >= 1.0 - epsilon;
            if stop || m >= n {
                q.stats.converged_early = stop && m < n;
                for (idx, &attr) in q.candidates.iter().enumerate() {
                    q.stats.note_retirement(iter);
                    if observed {
                        q.retired_log.push((attr, q.bounds[idx].lower, q.bounds[idx].upper));
                    }
                }
                let top: Vec<AttrScore> = order[..k]
                    .iter()
                    .map(|&i| AttrScore {
                        attr: q.candidates[i],
                        name: dataset
                            .schema()
                            .field(q.candidates[i])
                            .map(|f| f.name().to_owned())
                            .unwrap_or_default(),
                        estimate: q.bounds[i].point_estimate(),
                        lower: q.bounds[i].lower,
                        upper: q.bounds[i].upper,
                        retired_iteration: iter,
                    })
                    .collect();
                q.result = Some(TopKResult { top, stats: std::mem::take(&mut q.stats) });
                return;
            }

            // Prune candidates that cannot reach this target's top-k.
            let mut by_lower: Vec<usize> = (0..q.candidates.len()).collect();
            by_lower.sort_by(|&a, &b| {
                q.bounds[b]
                    .lower
                    .partial_cmp(&q.bounds[a].lower)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let kth_lower = q.bounds[by_lower[k - 1]].lower;
            let keep: Vec<bool> = q.bounds.iter().map(|b| b.upper >= kth_lower).collect();
            for (idx, &attr) in q.candidates.iter().enumerate() {
                if !keep[idx] {
                    q.stats.note_retirement(iter);
                    if observed {
                        q.retired_log.push((attr, q.bounds[idx].lower, q.bounds[idx].upper));
                    }
                }
            }
            retain_parallel(&mut q.candidates, &keep);
            retain_parallel(&mut q.joints, &keep);
            retain_parallel(&mut q.bounds, &keep);
        });
        if let Some(s) = span {
            observer.phase(Phase::Decide, iter, s.elapsed().as_nanos() as u64);
        }
        if observed {
            for q in &mut queries {
                for (attr, lower, upper) in q.retired_log.drain(..) {
                    observer.attr_retired(attr, iter, AttrBounds { lower, upper });
                }
            }
        }

        if queries.iter().all(|q| q.result.is_some()) {
            break;
        }
        m_target = (m * 2).min(n);
    }

    let results: Vec<TopKResult> = queries
        .into_iter()
        .map(|q| q.result.expect("loop exits only when all targets finished"))
        .collect();
    observer.query_end(&RunStats {
        sample_size: sampler.sampled(),
        iterations: outer_iter,
        rows_scanned: results.iter().map(|r| r.stats.rows_scanned).sum(),
        converged_early: results.iter().all(|r| r.stats.converged_early),
    });
    Ok(results)
}

/// Keeps `items[i]` where `keep[i]`, preserving order.
fn retain_parallel<T>(items: &mut Vec<T>, keep: &[bool]) {
    let mut it = keep.iter();
    items.retain(|_| *it.next().expect("keep mask matches length"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mi_top_k;
    use swope_columnar::{Column, Field, Schema};

    fn correlated_dataset(n: usize) -> Dataset {
        let base: Vec<u32> = (0..n).map(|r| (r as u32) % 4).collect();
        let mut fields = vec![Field::new("t0", 4)];
        let mut columns = vec![Column::new(base.clone(), 4).unwrap()];
        for (i, noise_mod) in [1u32, 3, 7].iter().enumerate() {
            let codes: Vec<u32> = (0..n)
                .map(|r| {
                    if (r as u32) % (noise_mod + 1) == 0 {
                        ((r as u32).wrapping_mul(2654435761) >> 13) % 4
                    } else {
                        base[r]
                    }
                })
                .collect();
            fields.push(Field::new(format!("c{i}"), 4));
            columns.push(Column::new(codes, 4).unwrap());
        }
        Dataset::new(Schema::new(fields), columns).unwrap()
    }

    fn config() -> SwopeConfig {
        SwopeConfig::with_epsilon(0.5)
    }

    #[test]
    fn batch_matches_individual_contracts() {
        let ds = correlated_dataset(25_000);
        let targets = vec![0usize, 1, 2];
        let batch = mi_top_k_batch(&ds, &targets, 2, &config()).unwrap();
        assert_eq!(batch.len(), 3);
        for (result, &t) in batch.iter().zip(&targets) {
            let single = mi_top_k(&ds, t, 2, &config()).unwrap();
            // Same returned attribute sets (both are near-exact here).
            let mut a = result.attr_indices();
            let mut b = single.attr_indices();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "target {t}");
            assert!(result.top.iter().all(|s| s.attr != t));
        }
    }

    #[test]
    fn batch_shares_sampling_work() {
        let ds = correlated_dataset(50_000);
        let targets = vec![0usize, 1, 2, 3];
        let batch = mi_top_k_batch(&ds, &targets, 1, &config()).unwrap();
        let batch_work: u64 = batch.iter().map(|r| r.stats.rows_scanned).sum();
        let single_work: u64 = targets
            .iter()
            .map(|&t| mi_top_k(&ds, t, 1, &config()).unwrap().stats.rows_scanned)
            .sum();
        // Batched accounting excludes the shared marginal scans, so it
        // must come in below the sum of standalone runs.
        assert!(batch_work <= single_work, "batch {batch_work} vs singles {single_work}");
    }

    #[test]
    fn empty_target_list() {
        let ds = correlated_dataset(1_000);
        assert!(mi_top_k_batch(&ds, &[], 1, &config()).unwrap().is_empty());
    }

    #[test]
    fn duplicate_targets_allowed() {
        let ds = correlated_dataset(5_000);
        let batch = mi_top_k_batch(&ds, &[1, 1], 1, &config()).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].attr_indices(), batch[1].attr_indices());
    }

    #[test]
    fn validation() {
        let ds = correlated_dataset(500);
        assert!(mi_top_k_batch(&ds, &[9], 1, &config()).is_err());
        assert!(mi_top_k_batch(&ds, &[0], 0, &config()).is_err());
        assert!(mi_top_k_batch(&ds, &[0], 4, &config()).is_err());
    }

    #[test]
    fn deterministic() {
        let ds = correlated_dataset(20_000);
        let c = config().with_seed(3);
        assert_eq!(
            mi_top_k_batch(&ds, &[0, 2], 2, &c).unwrap(),
            mi_top_k_batch(&ds, &[0, 2], 2, &c).unwrap()
        );
    }
}
