//! # swope-core
//!
//! **SWOPE** — *Sampling WithOut replacement for emPirical Entropy* — the
//! approximate top-k and filtering query algorithms of
//! *"Efficient Approximate Algorithms for Empirical Entropy and Mutual
//! Information"* (Chen & Wang, SIGMOD 2021).
//!
//! ## Queries
//!
//! Given a columnar [`swope_columnar::Dataset`] with `N` records and `h`
//! categorical attributes:
//!
//! * [`entropy_top_k`] (Algorithm 1) — the k attributes with (approximately)
//!   the highest empirical entropy, satisfying Definition 5: every returned
//!   attribute's estimate is within `(1−ε)` of its exact score, and its
//!   exact score is within `(1−ε)` of the true i-th largest.
//! * [`entropy_filter`] (Algorithm 2) — attributes with empirical entropy
//!   (approximately) above a threshold `η`, satisfying Definition 6:
//!   attributes scoring `≥ (1+ε)η` are always returned, attributes scoring
//!   `< (1−ε)η` never, and the band between is unconstrained.
//! * [`mi_top_k`] (Algorithm 3) and [`mi_filter`] (Algorithm 4) — the same
//!   queries on empirical mutual information against a target attribute.
//!
//! All guarantees hold with probability `1 − p_f` (the failure probability
//! in [`SwopeConfig`]).
//!
//! ## How it works
//!
//! Each query adaptively doubles a sample drawn *without replacement*
//! (modelled as a growing prefix of a random permutation — see
//! `swope-sampling`), maintains per-attribute confidence intervals from the
//! permutation concentration bounds in `swope-estimate::bounds`, and stops
//! as soon as the paper's relative-width stopping rule certifies the
//! approximate answer. Expected cost is
//! `O(min{hN, h·log(h·log N / p_f)·log²N / (ε²·s²)})` where `s` is the k-th
//! best score (top-k) or the threshold `η` (filtering) — *independent of
//! the gap* between adjacent scores that the exact algorithms
//! (EntropyRank/EntropyFilter) pay for.
//!
//! ## Example
//!
//! ```
//! use swope_columnar::DatasetBuilder;
//! use swope_core::{entropy_top_k, SwopeConfig};
//!
//! let mut b = DatasetBuilder::new(vec!["skewed".into(), "uniform".into()]);
//! for i in 0..1000u32 {
//!     let skewed = if i % 10 == 0 { "rare" } else { "common" };
//!     b.push_row(&[skewed.to_string(), format!("v{}", i % 16)]).unwrap();
//! }
//! let ds = b.finish();
//!
//! let result = entropy_top_k(&ds, 1, &SwopeConfig::default()).unwrap();
//! assert_eq!(result.top[0].name, "uniform"); // ~4 bits vs ~0.47 bits
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod batch;
mod config;
mod error;
pub mod exec;
mod filter;
mod mi_filter;
mod mi_topk;
mod observe;
pub mod parallel;
mod profile;
mod report;
mod scope;
pub mod shard;
pub mod state;
mod topk;

pub use batch::{mi_top_k_batch, mi_top_k_batch_exec, mi_top_k_batch_observed};
pub use config::{SamplingStrategy, SwopeConfig};
pub use error::SwopeError;
pub use exec::{ExecPool, ExecStats, Executor};
pub use filter::{entropy_filter, entropy_filter_exec, entropy_filter_observed};
pub use mi_filter::{mi_filter, mi_filter_exec, mi_filter_observed};
pub use mi_topk::{mi_top_k, mi_top_k_exec, mi_top_k_observed};
pub use profile::{
    entropy_profile, entropy_profile_exec, entropy_profile_observed, mi_profile, mi_profile_exec,
    mi_profile_observed, ProfileResult,
};
pub use report::{AttrScore, FilterResult, IterationTrace, QueryStats, TopKResult, WorkKind};
pub use scope::{
    entropy_filter_scoped, entropy_filter_scoped_exec, entropy_profile_scoped,
    entropy_profile_scoped_exec, entropy_top_k_scoped, entropy_top_k_scoped_exec, mi_filter_scoped,
    mi_filter_scoped_exec, mi_profile_scoped, mi_profile_scoped_exec, mi_top_k_scoped,
    mi_top_k_scoped_exec, CoveredDist, Scope,
};
pub use shard::{
    entropy_filter_sharded, entropy_filter_sharded_exec, entropy_filter_transport,
    entropy_profile_sharded, entropy_profile_sharded_exec, entropy_profile_transport,
    entropy_top_k_sharded, entropy_top_k_sharded_exec, entropy_top_k_transport, mi_filter_sharded,
    mi_filter_sharded_exec, mi_filter_transport, mi_profile_sharded, mi_profile_sharded_exec,
    mi_profile_transport, mi_top_k_sharded, mi_top_k_sharded_exec, mi_top_k_transport, AttrMeta,
    CountRequest, CountState, LocalShardSource, PairCountState, ShardCounts, ShardPlan,
    ShardTransport,
};
pub use topk::{entropy_top_k, entropy_top_k_exec, entropy_top_k_observed};

// Re-export the observer vocabulary so downstream crates can attach
// observers without depending on `swope-obs` directly.
pub use swope_obs::{
    ComposedObserver, JsonlSink, MetricsRegistry, NoopObserver, Phase, QueryKind, QueryObserver,
};

// Re-export the storage layer's gather instrumentation for the server's
// request tracer (the server depends on core, not on swope-store).
pub use swope_store::gather_stats;
