use swope_columnar::Dataset;
use swope_estimate::bounds::initial_sample_size;

use crate::SwopeError;

/// How records are sampled without replacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingStrategy {
    /// Row-level incremental Fisher–Yates prefix shuffle — exactly the
    /// sampling model the paper's analysis assumes.
    Row {
        /// RNG seed; queries with equal seeds are fully reproducible.
        seed: u64,
    },
    /// Page-granular sampling (paper §6.1): shuffle fixed-size row pages
    /// for cache-friendly columnar access. A performance heuristic — rows
    /// within a page are not independent if the data has locality.
    Page {
        /// Rows per page.
        page_rows: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl Default for SamplingStrategy {
    fn default() -> Self {
        Self::Row { seed: 0x5170_5e00 }
    }
}

/// Tunable parameters shared by every SWOPE query.
///
/// The defaults follow the paper's experimental settings where one exists:
/// `ε = 0.1` (the entropy top-k default; see [`SwopeConfig::with_epsilon`]
/// to use the paper's per-query defaults), `p_f` resolved to `1/N` at query
/// time.
#[derive(Debug, Clone, PartialEq)]
pub struct SwopeConfig {
    /// Approximation parameter `ε ∈ (0, 1)` of Definitions 5–6. Smaller is
    /// more accurate and more expensive.
    pub epsilon: f64,
    /// Failure probability `p_f ∈ (0, 1)`, or `None` to use the paper's
    /// setting `p_f = 1/N` resolved against the queried dataset.
    pub failure_probability: Option<f64>,
    /// Override for the initial sample size `M0`. `None` computes the
    /// paper's `M0 = log(h·log N / p_f)·log²N / log2²(u_max)`.
    pub initial_sample: Option<usize>,
    /// Sampling strategy (row-level by default).
    pub sampling: SamplingStrategy,
    /// Worker threads for per-attribute work. `1` (default) is fully
    /// sequential; values above the candidate count are clamped.
    pub threads: usize,
}

impl Default for SwopeConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.1,
            failure_probability: None,
            initial_sample: None,
            sampling: SamplingStrategy::default(),
            threads: 1,
        }
    }
}

impl SwopeConfig {
    /// A config with the given `ε` and all other fields default.
    pub fn with_epsilon(epsilon: f64) -> Self {
        Self { epsilon, ..Self::default() }
    }

    /// Returns a copy with the sampling seed replaced (both strategies).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.sampling = match self.sampling {
            SamplingStrategy::Row { .. } => SamplingStrategy::Row { seed },
            SamplingStrategy::Page { page_rows, .. } => SamplingStrategy::Page { page_rows, seed },
        };
        self
    }

    /// Returns a copy with `threads` workers.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Validates the parameter ranges shared by all queries.
    pub fn validate(&self) -> Result<(), SwopeError> {
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(SwopeError::InvalidEpsilon(self.epsilon));
        }
        if let Some(p) = self.failure_probability {
            if !(p > 0.0 && p < 1.0) {
                return Err(SwopeError::InvalidFailureProbability(p));
            }
        }
        Ok(())
    }

    /// The failure probability to use for `dataset`: the explicit value if
    /// set, otherwise the paper's `1/N` (clamped into `(0, 0.5]` for tiny
    /// datasets where `1/N` would not be a meaningful probability).
    pub fn resolve_p_f(&self, dataset: &Dataset) -> f64 {
        self.resolve_p_f_rows(dataset.num_rows())
    }

    /// [`SwopeConfig::resolve_p_f`] against an explicit population size.
    /// Scoped queries resolve against the scope's row count `n_s`, not the
    /// dataset's `N` — the guarantees hold over the scoped population.
    pub fn resolve_p_f_rows(&self, num_rows: usize) -> f64 {
        match self.failure_probability {
            Some(p) => p,
            None => (1.0 / num_rows.max(2) as f64).min(0.5),
        }
    }

    /// The initial sample size `M0` to use for `dataset`.
    pub fn resolve_m0(&self, dataset: &Dataset, p_f: f64) -> usize {
        self.resolve_m0_rows(dataset, dataset.num_rows(), p_f)
    }

    /// [`SwopeConfig::resolve_m0`] against an explicit population size
    /// (attribute count and supports still come from `dataset`).
    pub fn resolve_m0_rows(&self, dataset: &Dataset, num_rows: usize, p_f: f64) -> usize {
        self.resolve_m0_meta(num_rows, dataset.num_attrs(), dataset.schema().max_support(), p_f)
    }

    /// [`SwopeConfig::resolve_m0_rows`] from schema facts alone. The
    /// shard-parallel loops resolve `M0` through this so a wire
    /// coordinator — which knows each peer's attribute metadata but holds
    /// no local `Dataset` — lands on exactly the same `M0` as a
    /// single-box run over the union population.
    pub fn resolve_m0_meta(
        &self,
        num_rows: usize,
        num_attrs: usize,
        max_support: u32,
        p_f: f64,
    ) -> usize {
        match self.initial_sample {
            Some(m0) => m0.clamp(1, num_rows.max(1)),
            None => {
                initial_sample_size(num_rows as u64, num_attrs, p_f, max_support as u64) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swope_columnar::{Column, Field, Schema};

    fn tiny_dataset(rows: usize) -> Dataset {
        let schema = Schema::new(vec![Field::new("a", 2)]);
        let col = Column::new(vec![0; rows], 2).unwrap();
        Dataset::new(schema, vec![col]).unwrap()
    }

    #[test]
    fn default_validates() {
        assert!(SwopeConfig::default().validate().is_ok());
    }

    #[test]
    fn epsilon_bounds_rejected() {
        assert!(SwopeConfig::with_epsilon(0.0).validate().is_err());
        assert!(SwopeConfig::with_epsilon(1.0).validate().is_err());
        assert!(SwopeConfig::with_epsilon(-0.5).validate().is_err());
        assert!(SwopeConfig::with_epsilon(0.999).validate().is_ok());
    }

    #[test]
    fn p_f_bounds_rejected() {
        let bad = |p| SwopeConfig { failure_probability: Some(p), ..Default::default() };
        assert!(bad(0.0).validate().is_err());
        assert!(bad(1.0).validate().is_err());
        assert!(bad(1e-9).validate().is_ok());
    }

    #[test]
    fn p_f_resolves_to_one_over_n() {
        let c = SwopeConfig::default();
        let ds = tiny_dataset(1000);
        assert!((c.resolve_p_f(&ds) - 0.001).abs() < 1e-12);
        // Tiny dataset clamps to 0.5.
        assert_eq!(c.resolve_p_f(&tiny_dataset(1)), 0.5);
    }

    #[test]
    fn m0_override_is_clamped() {
        let ds = tiny_dataset(100);
        let big = SwopeConfig { initial_sample: Some(1_000_000), ..Default::default() };
        assert_eq!(big.resolve_m0(&ds, 0.01), 100);
        let zero = SwopeConfig { initial_sample: Some(0), ..Default::default() };
        assert_eq!(zero.resolve_m0(&ds, 0.01), 1);
    }

    #[test]
    fn with_seed_updates_both_strategies() {
        let c = SwopeConfig::default().with_seed(7);
        assert_eq!(c.sampling, SamplingStrategy::Row { seed: 7 });
        let p = SwopeConfig {
            sampling: SamplingStrategy::Page { page_rows: 64, seed: 0 },
            ..Default::default()
        }
        .with_seed(9);
        assert_eq!(p.sampling, SamplingStrategy::Page { page_rows: 64, seed: 9 });
    }

    #[test]
    fn debug_format_mentions_key_parameters() {
        let c = SwopeConfig::with_epsilon(0.25).with_threads(4);
        let text = format!("{c:?}");
        assert!(text.contains("0.25"));
        assert!(text.contains("threads: 4"));
    }
}
