//! Algorithm 3: SWOPE approximate top-k on empirical mutual information.

use swope_columnar::{AttrIndex, Dataset};
use swope_estimate::bounds::lambda;
use swope_obs::{NoopObserver, Phase, QueryKind, QueryObserver};
use swope_sampling::DoublingSchedule;

use crate::exec::Executor;
use crate::observe::Instrumented;
use crate::report::{AttrScore, TopKResult, WorkKind};
use crate::scope::Population;
use crate::state::{GatherScratch, MiState, TargetState};
use crate::topk::top_k_indices;
use crate::{SwopeConfig, SwopeError};

/// Approximate top-k query on empirical mutual information against a
/// target attribute (paper Algorithm 3).
///
/// Returns the `k` candidate attributes with the highest estimated
/// `I(α_t, α)` satisfying Definition 5 with probability `1 − p_f`.
///
/// The bound machinery mirrors the entropy query, with three differences
/// from Algorithm 1 (§4.1):
///
/// * each candidate's interval combines bounds on `H(α_t)`, `H(α)` and the
///   joint `H(α_t, α)`, so the failure budget divides by 3:
///   `p'_f = p_f / (3·i_max·(h−1))`;
/// * the joint support is bounded by `ū = u_t·u_α` (tracking exact pair
///   supports for all pairs in advance is impractical);
/// * the stopping rule uses the interval width `6λ + b'` with
///   `b'(α) = b(α_t) + b(α) + b(α_t, α)`:
///   `(Ī(α_t, α'_k) − 6λ − b'_max) / Ī(α_t, α'_k) ≥ 1 − ε`.
///
/// Expected cost is
/// `O(min{hN, h·log(h·log N/p_f)·log²N / (ε²·I²(α_t, α*_k))})` (Theorem 5).
///
/// # Example
///
/// ```
/// use swope_columnar::{Column, Dataset, Field, Schema};
/// use swope_core::{mi_top_k, SwopeConfig};
///
/// // "copy" mirrors "label"; "noise" is unrelated.
/// let n = 4000;
/// let label: Vec<u32> = (0..n).map(|r| r % 4).collect();
/// let ds = Dataset::new(
///     Schema::new(vec![
///         Field::new("label", 4),
///         Field::new("copy", 4),
///         Field::new("noise", 4),
///     ]),
///     vec![
///         Column::new(label.clone(), 4).unwrap(),
///         Column::new(label, 4).unwrap(),
///         Column::new((0..n).map(|r| (r.wrapping_mul(2654435761) >> 13) % 4).collect(), 4).unwrap(),
///     ],
/// )
/// .unwrap();
///
/// let result = mi_top_k(&ds, 0, 1, &SwopeConfig::with_epsilon(0.5)).unwrap();
/// assert_eq!(result.top[0].name, "copy");
/// ```
///
/// # Errors
///
/// Fails fast on invalid `ε`/`p_f`, an empty dataset, a target index out
/// of range, no candidates (`h < 2`), or `k` outside `1..=h−1`.
pub fn mi_top_k(
    dataset: &Dataset,
    target: AttrIndex,
    k: usize,
    config: &SwopeConfig,
) -> Result<TopKResult, SwopeError> {
    mi_top_k_observed(dataset, target, k, config, &mut NoopObserver)
}

/// [`mi_top_k`] with a [`QueryObserver`] attached.
///
/// The result is bitwise-identical to the unobserved call with the same
/// config.
pub fn mi_top_k_observed<O: QueryObserver>(
    dataset: &Dataset,
    target: AttrIndex,
    k: usize,
    config: &SwopeConfig,
    observer: &mut O,
) -> Result<TopKResult, SwopeError> {
    mi_top_k_exec(dataset, target, k, config, observer, &Executor::new(config.threads))
}

/// [`mi_top_k_observed`] with an injected [`Executor`].
///
/// See [`crate::exec`]: the executor supplies the (possibly shared)
/// worker pool, and results are bitwise identical for any executor.
pub fn mi_top_k_exec<O: QueryObserver>(
    dataset: &Dataset,
    target: AttrIndex,
    k: usize,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
) -> Result<TopKResult, SwopeError> {
    config.validate()?;
    let h = dataset.num_attrs();
    let n = dataset.num_rows();
    if h == 0 || n == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    if target >= h {
        return Err(SwopeError::TargetOutOfRange { target, num_attrs: h });
    }
    if h < 2 {
        return Err(SwopeError::NoCandidates);
    }
    let candidates = h - 1;
    if k == 0 || k > candidates {
        return Err(SwopeError::InvalidK { k, candidates });
    }
    mi_top_k_run(dataset, target, k, config, observer, exec, Population::unscoped(n, config))
}

/// The adaptive loop body, generic over the sampled population (see
/// [`crate::scope`]). MI populations are always physical — covered-page
/// histograms cannot synthesize joint co-occurrences.
#[allow(clippy::too_many_arguments)]
pub(crate) fn mi_top_k_run<O: QueryObserver>(
    dataset: &Dataset,
    target: AttrIndex,
    k: usize,
    config: &SwopeConfig,
    observer: &mut O,
    exec: &Executor,
    mut pop: Population,
) -> Result<TopKResult, SwopeError> {
    let h = dataset.num_attrs();
    let n = pop.n();
    let candidates = h - 1;
    let epsilon = config.epsilon;
    let p_f = config.resolve_p_f_rows(n);
    let m0 = config.resolve_m0_rows(dataset, n, p_f);
    let schedule = DoublingSchedule::new(n, m0);
    // Three Lemma-3 applications per candidate per iteration (Alg. 3 line 1).
    let p_prime = p_f / (3.0 * schedule.i_max() as f64 * candidates as f64);

    let mut target_state = TargetState::new(dataset, target);
    let u_t = target_state.support;
    let mut states: Vec<MiState> =
        (0..h).filter(|&a| a != target).map(|a| MiState::new(a, u_t, dataset.support(a))).collect();
    let mut scratch = GatherScratch::new(candidates);
    let mut it = Instrumented::start(observer, QueryKind::MiTopK, h, n, config);
    it.setup(pop.setup_rows(), pop.setup_nanos());

    let mut m_target = schedule.m0();
    loop {
        it.begin_iteration();
        let span = it.phase_start();
        let (delta_range, _covered) = pop.grow(m_target);
        it.phase_end(Phase::SampleGrow, span);
        let m = pop.sampled();
        let delta = &pop.rows()[delta_range];
        let lam = lambda(m as u64, n as u64, p_prime);
        let live = states.len();
        it.iteration(m, live, lam);
        // Target scan + per-candidate marginal and joint updates.
        it.record_work(delta.len(), live, WorkKind::MiPerTarget);

        let span = it.phase_start();
        // Gather the target codes once; every candidate reuses them.
        let (t_buf, slots) = scratch.target_and_slots(live);
        target_state.ingest_into(dataset.column(target), delta, t_buf);
        let t_codes: &[u32] = t_buf;
        exec.for_each2(&mut states, slots, |st, buf| {
            st.ingest_staged(dataset.column(st.attr), t_codes, delta, buf);
        });
        it.phase_end(Phase::Ingest, span);
        let span = it.phase_start();
        let h_t = target_state.sample_entropy();
        exec.for_each_mut(&mut states, |st| {
            st.update_bounds(h_t, u_t, n as u64, p_prime);
        });
        it.phase_end(Phase::UpdateBounds, span);

        let span = it.phase_start();
        // R <- top-k candidates by upper bound (Alg. 3 lines 7-9).
        let by_upper = top_k_indices(&states, k, |st| st.bounds.upper);
        let kth_upper = states[by_upper[k - 1]].bounds.upper;
        let b_max = by_upper.iter().map(|&i| states[i].bounds.bias_total).fold(0.0f64, f64::max);

        // Stopping rule (Alg. 3 line 10).
        let stop = kth_upper > 0.0 && (kth_upper - 6.0 * lam - b_max) / kth_upper >= 1.0 - epsilon;
        if stop || m >= n {
            it.phase_end(Phase::Decide, span);
            for st in &states {
                it.attr_retired(st.attr, st.bounds.lower, st.bounds.upper);
            }
            let retired_iteration = it.current_iteration();
            let top = by_upper
                .iter()
                .map(|&i| mi_score(dataset, &states[i], retired_iteration))
                .collect();
            let converged_early = stop && m < n;
            return Ok(TopKResult { top, stats: it.finish(converged_early) });
        }

        // Prune candidates whose upper bound falls below the k-th largest
        // lower bound (lines 16-19).
        let by_lower = top_k_indices(&states, k, |st| st.bounds.lower);
        let kth_lower = states[by_lower[k - 1]].bounds.lower;
        states.retain(|st| {
            let keep = st.bounds.upper >= kth_lower;
            if !keep {
                it.attr_retired(st.attr, st.bounds.lower, st.bounds.upper);
            }
            keep
        });
        it.phase_end(Phase::Decide, span);

        m_target = (m * 2).min(n);
    }
}

pub(crate) fn mi_score(dataset: &Dataset, st: &MiState, retired_iteration: usize) -> AttrScore {
    AttrScore {
        attr: st.attr,
        name: dataset.schema().field(st.attr).map(|f| f.name().to_owned()).unwrap_or_default(),
        estimate: st.bounds.point_estimate(),
        lower: st.bounds.lower,
        upper: st.bounds.upper,
        retired_iteration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swope_columnar::{Column, Field, Schema};

    /// Target column cycles 0..4; candidate `i` copies the target through a
    /// noise level that increases with `i`, so MI ranking is c0 > c1 > ...
    /// plus one independent column at the end.
    fn correlated_dataset(n: usize) -> Dataset {
        let target: Vec<u32> = (0..n).map(|r| (r as u32) % 4).collect();
        let mut fields = vec![Field::new("target", 4)];
        let mut columns = vec![Column::new(target.clone(), 4).unwrap()];
        for (i, noise_mod) in [1u32, 3, 7].iter().enumerate() {
            // Copy the target except every noise_mod+1-th row is scrambled:
            // smaller noise_mod => more scrambling => lower MI.
            let codes: Vec<u32> = (0..n)
                .map(|r| {
                    if (r as u32) % (noise_mod + 1) == 0 {
                        ((r as u32).wrapping_mul(2654435761) >> 13) % 4
                    } else {
                        target[r]
                    }
                })
                .collect();
            fields.push(Field::new(format!("c{i}"), 4));
            columns.push(Column::new(codes, 4).unwrap());
        }
        // Independent column.
        fields.push(Field::new("indep", 4));
        columns.push(
            Column::new(
                (0..n).map(|r| ((r as u32).wrapping_mul(2654435761) >> 13) % 4).collect(),
                4,
            )
            .unwrap(),
        );
        Dataset::new(Schema::new(fields), columns).unwrap()
    }

    fn config() -> SwopeConfig {
        SwopeConfig { epsilon: 0.5, ..SwopeConfig::default() }
    }

    #[test]
    fn finds_most_informative_candidate() {
        let ds = correlated_dataset(30_000);
        let r = mi_top_k(&ds, 0, 1, &config()).unwrap();
        // c2 (least scrambled) has the highest MI with the target.
        assert_eq!(r.top[0].name, "c2");
    }

    #[test]
    fn ranking_matches_noise_levels() {
        let ds = correlated_dataset(30_000);
        let r = mi_top_k(&ds, 0, 3, &config()).unwrap();
        let names: Vec<&str> = r.top.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["c2", "c1", "c0"]);
    }

    #[test]
    fn target_never_in_results() {
        let ds = correlated_dataset(10_000);
        let r = mi_top_k(&ds, 0, 4, &config()).unwrap();
        assert!(r.top.iter().all(|s| s.attr != 0));
        assert_eq!(r.top.len(), 4);
    }

    #[test]
    fn validation_errors() {
        let ds = correlated_dataset(1_000);
        assert!(matches!(
            mi_top_k(&ds, 99, 1, &config()),
            Err(SwopeError::TargetOutOfRange { .. })
        ));
        assert!(matches!(mi_top_k(&ds, 0, 0, &config()), Err(SwopeError::InvalidK { .. })));
        assert!(matches!(mi_top_k(&ds, 0, 5, &config()), Err(SwopeError::InvalidK { .. })));
        // Single-attribute dataset has no candidates.
        let schema = Schema::new(vec![Field::new("only", 2)]);
        let ds1 = Dataset::new(schema, vec![Column::new(vec![0, 1], 2).unwrap()]).unwrap();
        assert!(matches!(mi_top_k(&ds1, 0, 1, &config()), Err(SwopeError::NoCandidates)));
    }

    #[test]
    fn bounds_bracket_estimates() {
        let ds = correlated_dataset(20_000);
        let r = mi_top_k(&ds, 0, 2, &config()).unwrap();
        for s in &r.top {
            assert!(s.lower <= s.estimate && s.estimate <= s.upper);
            assert!(s.lower >= 0.0, "MI lower bound must be nonnegative");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = correlated_dataset(20_000);
        let c = config().with_seed(11);
        assert_eq!(mi_top_k(&ds, 0, 2, &c).unwrap(), mi_top_k(&ds, 0, 2, &c).unwrap());
    }

    #[test]
    fn parallel_matches_sequential() {
        let ds = correlated_dataset(20_000);
        let seq = mi_top_k(&ds, 0, 2, &config().with_seed(5)).unwrap();
        let par = mi_top_k(&ds, 0, 2, &config().with_seed(5).with_threads(4)).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn tiny_dataset_exact_path() {
        let ds = correlated_dataset(64);
        let r = mi_top_k(&ds, 0, 1, &config()).unwrap();
        assert_eq!(r.stats.sample_size, 64);
        assert_eq!(r.top[0].name, "c2");
    }

    #[test]
    fn nontrivial_target_index() {
        let ds = correlated_dataset(10_000);
        // Use c2 (attr 3) as target; the original target column copies it
        // closely, so it should rank first.
        let r = mi_top_k(&ds, 3, 1, &config()).unwrap();
        assert_eq!(r.top[0].name, "target");
    }
}
