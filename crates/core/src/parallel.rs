//! Minimal data-parallel helper for per-attribute work.
//!
//! Every SWOPE iteration performs independent work per candidate attribute
//! (ingest the ΔM new sampled records into that attribute's counters and
//! recompute its bounds). Candidates share nothing mutable, so the natural
//! parallelization is to shard the candidate slice across scoped threads.
//! A full thread-pool or rayon-style scheduler would be overkill: the
//! workload is one fork-join per iteration with uniform-cost items.

/// Applies `f` to every element of `items`, splitting the slice across up
/// to `threads` scoped worker threads.
///
/// Falls back to a plain sequential loop when `threads <= 1` or there are
/// fewer than two items, avoiding any thread overhead on the common
/// single-threaded configuration.
pub fn for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        for item in items.iter_mut() {
            f(item);
        }
        return;
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for shard in items.chunks_mut(chunk) {
            scope.spawn(|| {
                for item in shard.iter_mut() {
                    f(item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sequential_path_applies_all() {
        let mut items = vec![1, 2, 3];
        for_each_mut(&mut items, 1, |x| *x *= 10);
        assert_eq!(items, vec![10, 20, 30]);
    }

    #[test]
    fn parallel_path_applies_all_exactly_once() {
        let mut items: Vec<u64> = (0..1000).collect();
        let calls = AtomicUsize::new(0);
        for_each_mut(&mut items, 8, |x| {
            *x += 1;
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        for (i, &v) in items.iter().enumerate() {
            assert_eq!(v, i as u64 + 1);
        }
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let mut items = vec![5];
        for_each_mut(&mut items, 64, |x| *x = 7);
        assert_eq!(items, vec![7]);
    }

    #[test]
    fn empty_slice_is_a_noop() {
        let mut items: Vec<i32> = vec![];
        for_each_mut(&mut items, 4, |_| panic!("must not be called"));
    }

    #[test]
    fn results_match_sequential_for_any_thread_count() {
        for threads in [1usize, 2, 3, 7, 16] {
            let mut par: Vec<u64> = (0..97).collect();
            let mut seq: Vec<u64> = (0..97).collect();
            for_each_mut(&mut par, threads, |x| *x = x.wrapping_mul(3) + 1);
            for x in seq.iter_mut() {
                *x = x.wrapping_mul(3) + 1;
            }
            assert_eq!(par, seq, "threads = {threads}");
        }
    }
}
