//! Minimal data-parallel helper for per-attribute work.
//!
//! Every SWOPE iteration performs independent work per candidate attribute
//! (ingest the ΔM new sampled records into that attribute's counters and
//! recompute its bounds). Candidates share nothing mutable, so the natural
//! parallelization is to shard the candidate slice across worker threads.
//!
//! This free function spawns a fresh `thread::scope` per call and is kept
//! for one-shot callers (the exact baselines in `swope-baselines`). The
//! adaptive loops instead dispatch through [`crate::exec::Executor`],
//! which amortizes thread creation across a whole query; both use the
//! same dynamic-chunking discipline: workers claim index ranges from an
//! atomic cursor, so no worker is ever handed an empty static shard and
//! uneven per-item cost no longer straggles one shard.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Shared base pointer for the claim loop; soundness comes from the
/// cursor protocol (each index claimed exactly once) exactly as in
/// `crate::exec` — see the safety discussion there.
struct SendPtr<T>(*mut T);

// SAFETY: disjoint index claims make concurrent `&mut` derivation from
// the shared base pointer sound; the scope joins before returning.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than direct field use) so closures capture the
    /// `Sync` wrapper, not the raw pointer field itself.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Applies `f` to every element of `items` exactly once, using up to
/// `threads` threads (the calling thread participates, so at most
/// `threads − 1` are spawned — and none when `threads <= 1` or the slice
/// has fewer than two items).
///
/// Work is claimed dynamically from an atomic cursor rather than split
/// into static shards, so `items.len() < threads` cannot produce empty
/// or lopsided shards: at most `min(threads, len)` threads ever touch
/// the slice, and a zero-item call returns without spawning anything.
pub fn for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let len = items.len();
    let workers = threads.max(1).min(len);
    if workers <= 1 {
        for item in items.iter_mut() {
            f(item);
        }
        return;
    }
    // Same chunking policy as `crate::exec`: ~4 chunks per worker keeps
    // cursor traffic negligible while letting fast workers absorb slack.
    let chunk = (len / (workers * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let base = SendPtr(items.as_mut_ptr());
    let claim = || loop {
        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= len {
            break;
        }
        let end = (start + chunk).min(len);
        for i in start..end {
            // SAFETY: each index is claimed by exactly one fetch_add
            // winner, so the derived `&mut` references are disjoint, and
            // the scope below joins before `items` is used again.
            f(unsafe { &mut *base.get().add(i) });
        }
    };
    std::thread::scope(|scope| {
        for _ in 1..workers {
            scope.spawn(claim);
        }
        claim();
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_path_applies_all() {
        let mut items = vec![1, 2, 3];
        for_each_mut(&mut items, 1, |x| *x *= 10);
        assert_eq!(items, vec![10, 20, 30]);
    }

    #[test]
    fn parallel_path_applies_all_exactly_once() {
        let mut items: Vec<u64> = (0..1000).collect();
        let calls = AtomicUsize::new(0);
        for_each_mut(&mut items, 8, |x| {
            *x += 1;
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        for (i, &v) in items.iter().enumerate() {
            assert_eq!(v, i as u64 + 1);
        }
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let mut items = vec![5];
        for_each_mut(&mut items, 64, |x| *x = 7);
        assert_eq!(items, vec![7]);
    }

    #[test]
    fn fewer_items_than_threads_applies_exactly_once() {
        // 3 items, 16 requested threads: the old div_ceil sharding would
        // have produced empty shards; the cursor dispatcher must apply
        // each item exactly once with no stragglers.
        let mut items = vec![0u64; 3];
        let calls = AtomicUsize::new(0);
        for_each_mut(&mut items, 16, |x| {
            *x += 1;
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(items, vec![1, 1, 1]);
    }

    #[test]
    fn empty_slice_is_a_noop() {
        let mut items: Vec<i32> = vec![];
        for_each_mut(&mut items, 4, |_| panic!("must not be called"));
    }

    #[test]
    fn single_item_runs_on_the_calling_thread() {
        // len < 2 must not spawn: observe that `f` runs on the caller.
        let caller = std::thread::current().id();
        let mut items = vec![0u8];
        for_each_mut(&mut items, 64, |x| {
            assert_eq!(std::thread::current().id(), caller);
            *x = 1;
        });
        assert_eq!(items, vec![1]);
    }

    #[test]
    fn results_match_sequential_for_any_thread_count() {
        for threads in [1usize, 2, 3, 7, 16] {
            let mut par: Vec<u64> = (0..97).collect();
            let mut seq: Vec<u64> = (0..97).collect();
            for_each_mut(&mut par, threads, |x| *x = x.wrapping_mul(3) + 1);
            for x in seq.iter_mut() {
                *x = x.wrapping_mul(3) + 1;
            }
            assert_eq!(par, seq, "threads = {threads}");
        }
    }
}
