//! Divergences between empirical distributions (extension).
//!
//! Rounding out the information-theoretic toolbox: Kullback–Leibler
//! divergence and the Jensen–Shannon divergence/distance between two
//! columns' empirical value distributions. Typical use next to SWOPE
//! queries: drift detection between two snapshots of the same attribute
//! (JS distance is a proper, bounded metric, so it thresholds cleanly).
//!
//! Both operate on *aligned code spaces*: the two columns must use the
//! same dictionary/encoding for their codes to be comparable, which is
//! the case for two row-subsets of one dataset, a dataset and its
//! [`swope_columnar::Dataset::concat`] shards, or two snapshots encoded
//! with a shared dictionary.

use swope_columnar::Column;

/// Empirical distribution of a column: `P(i) = n_i / N` over
/// `0..support`. Returns an empty vector for an empty column.
pub fn empirical_distribution(column: &Column) -> Vec<f64> {
    let n = column.len();
    if n == 0 {
        return vec![0.0; column.support() as usize];
    }
    column.value_counts().iter().map(|&c| c as f64 / n as f64).collect()
}

/// Kullback–Leibler divergence `D(p ‖ q)` in bits.
///
/// Defined when `q_i = 0 ⇒ p_i = 0`; returns `+∞` otherwise (the
/// standard convention — an event `p` considers possible that `q` rules
/// out is infinitely surprising). Not symmetric; use
/// [`jensen_shannon_divergence`] for a symmetric, always-finite measure.
///
/// # Panics
/// Panics if the vectors' lengths differ.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "KL divergence requires aligned supports");
    let mut d = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi <= 0.0 {
            continue;
        }
        if qi <= 0.0 {
            return f64::INFINITY;
        }
        d += pi * (pi / qi).log2();
    }
    d.max(0.0)
}

/// Jensen–Shannon divergence in bits: symmetric, finite, in `[0, 1]`.
///
/// `JSD(p, q) = D(p ‖ m)/2 + D(q ‖ m)/2` with `m = (p + q)/2`.
///
/// # Panics
/// Panics if the vectors' lengths differ.
pub fn jensen_shannon_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "JS divergence requires aligned supports");
    let m: Vec<f64> = p.iter().zip(q).map(|(&a, &b)| 0.5 * (a + b)).collect();
    let half = |x: &[f64]| {
        let mut d = 0.0;
        for (&xi, &mi) in x.iter().zip(&m) {
            if xi > 0.0 {
                d += xi * (xi / mi).log2();
            }
        }
        d
    };
    (0.5 * half(p) + 0.5 * half(q)).clamp(0.0, 1.0)
}

/// Jensen–Shannon *distance* (the square root of the divergence): a
/// proper metric in `[0, 1]`.
pub fn jensen_shannon_distance(p: &[f64], q: &[f64]) -> f64 {
    jensen_shannon_divergence(p, q).sqrt()
}

/// JS distance between two columns' empirical distributions.
///
/// # Panics
/// Panics if the columns' supports differ (their code spaces would not
/// be comparable).
pub fn column_js_distance(a: &Column, b: &Column) -> f64 {
    assert_eq!(
        a.support(),
        b.support(),
        "columns must share a code space for divergence comparison"
    );
    jensen_shannon_distance(&empirical_distribution(a), &empirical_distribution(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(codes: Vec<u32>, support: u32) -> Column {
        Column::new(codes, support).unwrap()
    }

    #[test]
    fn kl_zero_iff_equal() {
        let p = [0.25, 0.75];
        assert_eq!(kl_divergence(&p, &p), 0.0);
        let q = [0.5, 0.5];
        assert!(kl_divergence(&p, &q) > 0.0);
    }

    #[test]
    fn kl_known_value() {
        // D((1,0) || (1/2,1/2)) = 1·log2(2) = 1 bit.
        assert!((kl_divergence(&[1.0, 0.0], &[0.5, 0.5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kl_infinite_off_support() {
        assert!(kl_divergence(&[0.5, 0.5], &[1.0, 0.0]).is_infinite());
    }

    #[test]
    fn kl_asymmetric() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        assert!((kl_divergence(&p, &q) - kl_divergence(&q, &p)).abs() > 1e-6);
    }

    #[test]
    fn js_symmetric_bounded_finite() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        let d = jensen_shannon_divergence(&p, &q);
        assert!((d - 1.0).abs() < 1e-12, "disjoint supports hit the 1-bit maximum");
        assert_eq!(jensen_shannon_divergence(&p, &q), jensen_shannon_divergence(&q, &p));
        assert_eq!(jensen_shannon_divergence(&p, &p), 0.0);
    }

    #[test]
    fn js_distance_triangle_inequality_smoke() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.1, 0.8, 0.1];
        let r = [0.3, 0.3, 0.4];
        let pq = jensen_shannon_distance(&p, &q);
        let pr = jensen_shannon_distance(&p, &r);
        let rq = jensen_shannon_distance(&r, &q);
        assert!(pq <= pr + rq + 1e-12);
    }

    #[test]
    fn column_distance_detects_drift() {
        let before = col((0..1000).map(|i| i % 4).collect(), 4);
        let same = col((0..1000).map(|i| (i + 1) % 4).collect(), 4);
        let drifted = col(vec![0; 1000], 4);
        assert!(column_js_distance(&before, &same) < 0.01);
        assert!(column_js_distance(&before, &drifted) > 0.5);
    }

    #[test]
    fn empirical_distribution_shapes() {
        let c = col(vec![0, 0, 1, 3], 4);
        assert_eq!(empirical_distribution(&c), vec![0.5, 0.25, 0.0, 0.25]);
        let empty = col(vec![], 3);
        assert_eq!(empirical_distribution(&empty), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "share a code space")]
    fn mismatched_supports_panic() {
        column_js_distance(&col(vec![0], 2), &col(vec![0], 3));
    }
}
