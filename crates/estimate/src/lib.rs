//! # swope-estimate
//!
//! Estimation substrate for the SWOPE framework: empirical entropy and
//! mutual information computation, incremental frequency counting, and the
//! permutation concentration bounds the paper's algorithms are built on.
//!
//! ## Layout
//!
//! * [`xlog`] — fast `x·log2(x)` with a precomputed small-value table.
//! * [`freq`] — counters: dense per-value counts, an Fx-hashed sparse map
//!   for attribute-pair counting, and an adaptive [`freq::PairCounter`].
//! * [`entropy`] — O(1)-update entropy accumulators over those counters
//!   ([`entropy::EntropyCounter`]) plus one-shot helpers
//!   ([`entropy::entropy_from_counts`], [`entropy::column_entropy`]).
//! * [`joint`] — the pairwise analogue ([`joint::JointEntropyCounter`]) and
//!   exact joint-entropy / mutual-information helpers.
//! * [`bounds`] — Lemmas 1–4 of the paper: the bias bound `b(α)`, the
//!   deviation radius `λ`, entropy/MI confidence intervals, and the
//!   `M*` sample-size inversion used in the complexity analysis.
//! * [`estimators`] — bias-corrected point estimators (Miller–Madow,
//!   jackknife) as extensions beyond the paper.
//! * [`conditional`] — conditional entropy `H(Y|X)` and conditional
//!   mutual information `I(X;Y|Z)` over value triples (extension).
//! * [`divergence`] — KL and Jensen–Shannon divergences between
//!   empirical distributions, e.g. for snapshot drift detection
//!   (extension).
//!
//! All entropies are in bits (`log2`), matching the paper's definitions.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bounds;
pub mod conditional;
pub mod divergence;
pub mod entropy;
pub mod estimators;
pub mod freq;
pub mod joint;
pub mod xlog;
