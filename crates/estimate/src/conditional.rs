//! Conditional entropy and conditional mutual information (extension).
//!
//! The feature-selection literature the paper motivates itself with
//! (\[13\] Fleuret's CMIM, \[26\] mRMR) scores candidates by *conditional*
//! quantities: `H(Y|X)` and `I(X;Y|Z)`. Both reduce to sums of joint
//! entropies, which this crate already computes efficiently:
//!
//! ```text
//! H(Y|X)    = H(X,Y) − H(X)
//! I(X;Y|Z)  = H(X,Z) + H(Y,Z) − H(Z) − H(X,Y,Z)
//! ```
//!
//! The triple-joint term uses a [`TripleEntropyCounter`] keyed by a
//! packed `(x, y, z)` code; like pair counting it is O(1) amortized per
//! record.

use swope_columnar::Column;

use crate::entropy::column_entropy;
use crate::freq::FxPairMap;
use crate::joint::joint_entropy;
use crate::xlog::{log2_or_zero, xlog2};

/// Exact empirical conditional entropy `H_D(y | x)` over full columns.
///
/// Always in `[0, H(y)]`: conditioning never increases entropy.
///
/// # Panics
/// Panics if the columns have different lengths.
pub fn conditional_entropy(y: &Column, x: &Column) -> f64 {
    (joint_entropy(x, y) - column_entropy(x)).max(0.0)
}

/// Incremental joint-entropy counter over value *triples*.
///
/// Codes are packed into a single `u64` key (21 bits per component, so
/// supports up to `2^21` per attribute — far beyond the paper's 1000
/// cap) and counted in an Fx-hashed map.
#[derive(Debug, Clone)]
pub struct TripleEntropyCounter {
    map: FxPairMap,
    sum_xlog: f64,
    total: u64,
}

/// Bits reserved per component in the packed triple key.
const FIELD_BITS: u32 = 21;

/// Maximum representable code in a triple key component.
pub const MAX_TRIPLE_CODE: u32 = (1 << FIELD_BITS) - 1;

fn pack_triple(a: u32, b: u32, c: u32) -> u64 {
    debug_assert!(a <= MAX_TRIPLE_CODE && b <= MAX_TRIPLE_CODE && c <= MAX_TRIPLE_CODE);
    ((a as u64) << (2 * FIELD_BITS)) | ((b as u64) << FIELD_BITS) | c as u64
}

impl Default for TripleEntropyCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl TripleEntropyCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self { map: FxPairMap::with_expected(1024), sum_xlog: 0.0, total: 0 }
    }

    /// Ingests one record's `(a, b, c)` triple. O(1) expected.
    ///
    /// # Panics
    /// Debug-panics if any code exceeds [`MAX_TRIPLE_CODE`].
    #[inline]
    pub fn add(&mut self, a: u32, b: u32, c: u32) {
        let new = self.map.add(pack_triple(a, b, c));
        self.sum_xlog += xlog2(new) - xlog2(new - 1);
        self.total += 1;
    }

    /// Number of records ingested.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Empirical joint entropy of the triple distribution, in bits.
    pub fn entropy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (log2_or_zero(self.total) - self.sum_xlog / self.total as f64).max(0.0)
    }

    /// Number of distinct triples observed.
    pub fn observed_distinct(&self) -> usize {
        self.map.len()
    }
}

/// Exact empirical joint entropy `H_D(a, b, c)` over three full columns.
///
/// # Panics
/// Panics if lengths differ or any support exceeds [`MAX_TRIPLE_CODE`].
pub fn triple_entropy(a: &Column, b: &Column, c: &Column) -> f64 {
    assert_eq!(a.len(), b.len(), "triple entropy requires aligned columns");
    assert_eq!(a.len(), c.len(), "triple entropy requires aligned columns");
    assert!(
        a.support() <= MAX_TRIPLE_CODE
            && b.support() <= MAX_TRIPLE_CODE
            && c.support() <= MAX_TRIPLE_CODE,
        "support too large for triple packing"
    );
    let mut counter = TripleEntropyCounter::new();
    let (ca, cb, cc) = (a.to_codes(), b.to_codes(), c.to_codes());
    for i in 0..ca.len() {
        counter.add(ca[i], cb[i], cc[i]);
    }
    counter.entropy()
}

/// Exact empirical conditional mutual information `I_D(x; y | z)`:
/// how much `x` tells about `y` beyond what `z` already tells.
///
/// Clamped at 0 (mathematically nonnegative; float cancellation can go
/// epsilon-negative).
pub fn conditional_mutual_information(x: &Column, y: &Column, z: &Column) -> f64 {
    let h_xz = joint_entropy(x, z);
    let h_yz = joint_entropy(y, z);
    let h_z = column_entropy(z);
    let h_xyz = triple_entropy(x, y, z);
    (h_xz + h_yz - h_z - h_xyz).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::joint::mutual_information;

    fn col(codes: Vec<u32>, support: u32) -> Column {
        Column::new(codes, support).unwrap()
    }

    #[test]
    fn conditional_entropy_of_self_is_zero() {
        let x = col(vec![0, 1, 2, 0, 1, 2], 3);
        assert!(conditional_entropy(&x, &x).abs() < 1e-12);
    }

    #[test]
    fn conditioning_on_independent_changes_nothing() {
        // y uniform over 2, x uniform over 2, independent via product grid.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for a in 0..2u32 {
            for b in 0..2u32 {
                xs.push(a);
                ys.push(b);
            }
        }
        let x = col(xs, 2);
        let y = col(ys, 2);
        assert!((conditional_entropy(&y, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chain_rule_h_y_given_x() {
        let x = col(vec![0, 0, 1, 1, 2, 2, 0, 1], 3);
        let y = col(vec![0, 1, 1, 1, 0, 0, 0, 1], 2);
        let lhs = conditional_entropy(&y, &x);
        let rhs = joint_entropy(&x, &y) - column_entropy(&x);
        assert!((lhs - rhs).abs() < 1e-12);
        // I(x;y) = H(y) - H(y|x).
        let mi = mutual_information(&x, &y);
        assert!((mi - (column_entropy(&y) - lhs)).abs() < 1e-12);
    }

    #[test]
    fn triple_entropy_matches_pairwise_when_one_is_constant() {
        let a = col(vec![0, 1, 0, 1, 2], 3);
        let b = col(vec![1, 1, 0, 0, 1], 2);
        let constant = col(vec![0; 5], 1);
        assert!((triple_entropy(&a, &b, &constant) - joint_entropy(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn cmi_reduces_to_mi_when_z_constant() {
        let x = col(vec![0, 1, 0, 1, 2, 2], 3);
        let y = col(vec![0, 1, 0, 1, 0, 1], 2);
        let z = col(vec![0; 6], 1);
        let cmi = conditional_mutual_information(&x, &y, &z);
        let mi = mutual_information(&x, &y);
        assert!((cmi - mi).abs() < 1e-12);
    }

    #[test]
    fn cmi_zero_when_z_determines_both() {
        // x and y are both copies of z: given z nothing remains.
        let z = col(vec![0, 1, 2, 0, 1, 2], 3);
        let cmi = conditional_mutual_information(&z, &z, &z);
        assert!(cmi.abs() < 1e-12);
    }

    #[test]
    fn cmi_detects_conditional_dependence() {
        // Classic XOR: x, y independent uniform bits, z = x XOR y.
        // I(x;y) = 0 but I(x;y|z) = 1 bit.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut zs = Vec::new();
        for a in 0..2u32 {
            for b in 0..2u32 {
                xs.push(a);
                ys.push(b);
                zs.push(a ^ b);
            }
        }
        let x = col(xs, 2);
        let y = col(ys, 2);
        let z = col(zs, 2);
        assert!(mutual_information(&x, &y).abs() < 1e-12);
        let cmi = conditional_mutual_information(&x, &y, &z);
        assert!((cmi - 1.0).abs() < 1e-12, "cmi = {cmi}");
    }

    #[test]
    fn triple_counter_tracks_totals() {
        let mut c = TripleEntropyCounter::new();
        c.add(0, 0, 0);
        c.add(0, 0, 0);
        c.add(1, 2, 3);
        assert_eq!(c.total(), 3);
        assert_eq!(c.observed_distinct(), 2);
        assert!(c.entropy() > 0.0);
    }

    #[test]
    #[should_panic(expected = "aligned columns")]
    fn triple_misaligned_panics() {
        triple_entropy(&col(vec![0], 1), &col(vec![0, 0], 1), &col(vec![0], 1));
    }
}
