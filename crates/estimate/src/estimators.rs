//! Bias-corrected entropy point estimators (extension beyond the paper).
//!
//! Lemma 1 shows the plug-in estimator `H_S` underestimates `H_D` by at
//! most `b(α)`. The entropy-estimation literature (\[25\], \[17\], \[18\] in the
//! paper's bibliography) offers classic corrections; we implement two so
//! users can quantify the bias empirically and so the bench harness can
//! show the Lemma 1 envelope in action:
//!
//! * **Miller–Madow**: `H_MM = H_plugin + (k̂ − 1) / (2M·ln 2)` where `k̂`
//!   is the number of observed distinct values.
//! * **Jackknife**: `H_JK = M·H_plugin − (M−1)/M · Σ_j H_{−j}` over
//!   leave-one-out samples, computed in O(u) via count grouping.
//!
//! These are *point* estimators without the paper's high-probability
//! interval guarantees; SWOPE's algorithms do not use them.

use crate::xlog::{log2_or_zero, xlog2};

/// Plug-in (maximum likelihood) entropy from counts, in bits. Identical to
/// [`crate::entropy::entropy_from_counts`]; re-exported here for symmetry
/// with the corrected estimators.
pub fn plugin(counts: &[u64]) -> f64 {
    crate::entropy::entropy_from_counts(counts)
}

/// Miller–Madow bias-corrected entropy, in bits.
///
/// Adds the first-order bias term `(k̂−1)/(2M)` nats `= (k̂−1)/(2M·ln 2)`
/// bits, where `k̂` is the number of values with nonzero count.
pub fn miller_madow(counts: &[u64]) -> f64 {
    let m: u64 = counts.iter().sum();
    if m == 0 {
        return 0.0;
    }
    let observed = counts.iter().filter(|&&c| c > 0).count() as f64;
    plugin(counts) + (observed - 1.0) / (2.0 * m as f64 * std::f64::consts::LN_2)
}

/// Jackknife bias-corrected entropy, in bits.
///
/// `H_JK = M·H − (M−1) · mean_j H_{−j}` where `H_{−j}` is the plug-in
/// entropy with record `j` removed. Removing a record with value `i` only
/// depends on `n_i`, so the mean over all `M` leave-one-outs groups into a
/// sum over values weighted by `n_i / M` — O(u) total.
pub fn jackknife(counts: &[u64]) -> f64 {
    let m: u64 = counts.iter().sum();
    if m <= 1 {
        return 0.0;
    }
    let h = plugin(counts);
    let m1 = m - 1;
    let m1f = m1 as f64;
    // Plug-in entropy with one record of value i removed:
    //   H_{-i} = log2(M-1) - (S - n_i·log2(n_i) + (n_i-1)·log2(n_i-1)) / (M-1)
    // where S = Σ n_j·log2(n_j).
    let s: f64 = counts.iter().map(|&c| xlog2(c)).sum();
    let mut mean_loo = 0.0;
    for &c in counts.iter().filter(|&&c| c > 0) {
        let s_without = s - xlog2(c) + xlog2(c - 1);
        let h_without = (log2_or_zero(m1) - s_without / m1f).max(0.0);
        mean_loo += (c as f64 / m as f64) * h_without;
    }
    (m as f64 * h - m1f * mean_loo).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(u: usize, per: u64) -> Vec<u64> {
        vec![per; u]
    }

    #[test]
    fn corrections_vanish_on_degenerate_inputs() {
        assert_eq!(plugin(&[]), 0.0);
        assert_eq!(miller_madow(&[]), 0.0);
        assert_eq!(jackknife(&[]), 0.0);
        assert_eq!(jackknife(&[1]), 0.0);
    }

    #[test]
    fn miller_madow_exceeds_plugin() {
        let counts = [5u64, 3, 2, 7, 1];
        assert!(miller_madow(&counts) > plugin(&counts));
    }

    #[test]
    fn miller_madow_correction_value() {
        let counts = [4u64, 4]; // k̂=2, M=8
        let expected = plugin(&counts) + 1.0 / (16.0 * std::f64::consts::LN_2);
        assert!((miller_madow(&counts) - expected).abs() < 1e-12);
    }

    #[test]
    fn jackknife_matches_naive_leave_one_out() {
        // Naive O(M·u) jackknife for a small sample.
        let counts = [3u64, 2, 1];
        let m: u64 = counts.iter().sum();
        let h = plugin(&counts);
        let mut mean = 0.0;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let mut reduced = counts.to_vec();
            reduced[i] -= 1;
            mean += (c as f64 / m as f64) * plugin(&reduced);
        }
        let naive = m as f64 * h - (m - 1) as f64 * mean;
        assert!((jackknife(&counts) - naive).abs() < 1e-12);
    }

    #[test]
    fn corrections_reduce_bias_on_uniform_subsamples() {
        // True distribution: uniform over 32 values -> H = 5 bits.
        // A small sample's plug-in underestimates; corrections move up.
        let sample = uniform(32, 2); // M = 64, still biased downward
        let h_plug = plugin(&sample);
        let h_mm = miller_madow(&sample);
        assert!(h_plug <= 5.0);
        assert!(h_mm > h_plug);
        assert!(h_mm <= 5.4, "correction should not wildly overshoot");
    }

    #[test]
    fn estimators_agree_at_large_samples() {
        let counts = uniform(4, 1_000_000);
        let (p, mm, jk) = (plugin(&counts), miller_madow(&counts), jackknife(&counts));
        assert!((p - 2.0).abs() < 1e-9);
        assert!((mm - 2.0).abs() < 1e-5);
        assert!((jk - 2.0).abs() < 1e-5);
    }
}
