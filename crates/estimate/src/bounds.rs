//! Concentration bounds for sampling without replacement (paper §2.2–§4).
//!
//! The chain of results implemented here:
//!
//! * **Lemma 1** (bias): `0 ≤ H_D(α) − E[H_S(α)] ≤ b(α)` with
//!   `b(α) = log2(1 + (u_α−1)(N−M) / (M(N−1)))` — [`bias`].
//! * **Lemma 2** (El-Yaniv & Pechyony): a sub-Gaussian tail for
//!   `(M,N)`-symmetric functions of a random permutation, with
//!   per-swap sensitivity `β = log2(M/(M−1)) + log2(M−1)/M` for empirical
//!   entropy — [`beta`].
//! * **Lemma 3**: inverting Lemma 2 at failure probability `p` gives the
//!   deviation radius [`lambda`] and the interval
//!   `H ∈ [H_S − λ, H_S + λ + b(α)]` — [`entropy_bounds`].
//! * **§4.1**: mutual information bounds combining three entropy intervals
//!   with the joint support bounded by `ū = u_t·u_α` — [`mi_bounds`]. The
//!   interval width is `6λ + b'` with `b' = b(α_t) + b(α) + b(α_t, α)`.
//! * **Lemma 4**: the sample size `M*` at which `2λ + b(α) ≤ κ` holds —
//!   [`sample_size_for_width`], used for `M0` and the complexity analysis.
//!
//! Conventions: `M = 0` or `M = 1` yield infinite radii (no information);
//! `M = N` yields zero radii (the sample is the population, bounds
//! collapse onto the exact value). Lower bounds are clamped at 0 —
//! entropy and MI are nonnegative, so clamping only tightens and never
//! invalidates an interval.

/// Per-swap sensitivity `β` of empirical entropy under one transposition of
/// a sampled and an unsampled record (Lemma 3's constant):
/// `β = log2(M/(M−1)) + log2(M−1)/M`.
///
/// Returns `+∞` for `m < 2` (a 0- or 1-record sample carries no usable
/// concentration).
pub fn beta(m: u64) -> f64 {
    if m < 2 {
        return f64::INFINITY;
    }
    let mf = m as f64;
    (mf / (mf - 1.0)).log2() + (mf - 1.0).log2() / mf
}

/// Deviation radius `λ` (Eq. 6): the one-sided error of `H_S` vs its
/// expectation at failure probability `p`, from Lemma 2:
///
/// ```text
/// λ = β·sqrt( M(N−M)·ln(2/p) / (2(N−1/2)·(1 − 1/(2·max(M, N−M)))) )
/// ```
///
/// Returns 0 when `m ≥ n` (exact) and `+∞` when `m < 2`.
///
/// ```
/// use swope_estimate::bounds::lambda;
///
/// let l = lambda(10_000, 1_000_000, 1e-6);
/// assert!(l > 0.0 && l < 0.5);               // ~0.4 bits at a 1% sample
/// assert!(lambda(40_000, 1_000_000, 1e-6) < l); // shrinks with M
/// assert_eq!(lambda(1_000_000, 1_000_000, 1e-6), 0.0); // exact at M = N
/// ```
pub fn lambda(m: u64, n: u64, p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "failure probability must be in (0,1), got {p}");
    if n == 0 || m >= n {
        return 0.0;
    }
    if m < 2 {
        return f64::INFINITY;
    }
    let (mf, nf) = (m as f64, n as f64);
    let correction = 1.0 - 1.0 / (2.0 * (m.max(n - m)) as f64);
    let inner = mf * (nf - mf) * (2.0 / p).ln() / (2.0 * (nf - 0.5) * correction);
    beta(m) * inner.sqrt()
}

/// Bias bound `b(α)` (Eq. 7 / Lemma 1): the maximum downward bias of
/// `E[H_S(α)]` relative to `H_D(α)` for an attribute of support `u`:
///
/// ```text
/// b(α) = log2(1 + (u−1)(N−M) / (M(N−1)))
/// ```
///
/// Returns 0 when `m ≥ n` and `+∞` when `m = 0`.
///
/// ```
/// use swope_estimate::bounds::bias;
///
/// // A 1000-value attribute sampled at 1%: up to ~0.14 bits of bias.
/// let b = bias(1000, 10_000, 1_000_000);
/// assert!(b > 0.1 && b < 0.2);
/// // A binary attribute at the same sample: essentially none.
/// assert!(bias(2, 10_000, 1_000_000) < 2e-4);
/// ```
pub fn bias(u: u64, m: u64, n: u64) -> f64 {
    if n <= 1 || m >= n {
        return 0.0;
    }
    if m == 0 {
        return f64::INFINITY;
    }
    let (uf, mf, nf) = (u as f64, m as f64, n as f64);
    (1.0 + (uf - 1.0) * (nf - mf) / (mf * (nf - 1.0))).log2()
}

/// A confidence interval for an empirical entropy, per Lemma 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntropyBounds {
    /// The sample entropy `H_S(α)` the interval is centred on.
    pub sample_entropy: f64,
    /// Lower bound `H̲(α) = max(H_S − λ, 0)`.
    pub lower: f64,
    /// Upper bound `H̄(α) = H_S + λ + b(α)`.
    pub upper: f64,
    /// The deviation radius λ used.
    pub lambda: f64,
    /// The bias term b(α) used.
    pub bias: f64,
}

impl EntropyBounds {
    /// The point estimate `Ĥ = (H̲ + H̄)/2` used by the filtering
    /// algorithms.
    pub fn point_estimate(&self) -> f64 {
        0.5 * (self.lower + self.upper)
    }

    /// Interval width `H̄ − H̲` (≤ `2λ + b` with equality unless the lower
    /// clamp at 0 engaged).
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Builds the Lemma 3 interval for one attribute.
///
/// * `sample_entropy` — `H_S(α)` over the current `m`-record sample,
/// * `m`, `n` — sample and population sizes,
/// * `u` — the attribute's support size,
/// * `p` — per-application failure probability (`p'_f` in the algorithms).
///
/// ```
/// use swope_estimate::bounds::entropy_bounds;
///
/// let b = entropy_bounds(4.2, 10_000, 1_000_000, 100, 1e-6);
/// assert!(b.lower < 4.2 && 4.2 < b.upper);
/// // The interval-width identity H̄ − H̲ = 2λ + b(α):
/// assert!((b.width() - (2.0 * b.lambda + b.bias)).abs() < 1e-12);
/// ```
pub fn entropy_bounds(sample_entropy: f64, m: u64, n: u64, u: u64, p: f64) -> EntropyBounds {
    let lam = lambda(m, n, p);
    let b = bias(u, m, n);
    EntropyBounds {
        sample_entropy,
        lower: (sample_entropy - lam).max(0.0),
        upper: sample_entropy + lam + b,
        lambda: lam,
        bias: b,
    }
}

/// A confidence interval for an empirical mutual information (§4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiBounds {
    /// Sample MI `I_S = H_S(α_t) + H_S(α) − H_S(α_t, α)`.
    pub sample_mi: f64,
    /// Lower bound `I̲ = max(H̲_t + H̲_α − H̄_{t,α}, 0)`.
    pub lower: f64,
    /// Upper bound `Ī = H̄_t + H̄_α − H̲_{t,α}`.
    pub upper: f64,
    /// The shared deviation radius λ (same `m`, `n`, `p` for all three
    /// entropies).
    pub lambda: f64,
    /// Total bias `b' = b(α_t) + b(α) + b(α_t, α)`.
    pub bias_total: f64,
}

impl MiBounds {
    /// The point estimate `Î = (I̲ + Ī)/2`.
    pub fn point_estimate(&self) -> f64 {
        0.5 * (self.lower + self.upper)
    }

    /// Interval width `Ī − I̲` (≤ `6λ + b'`, see module docs).
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Builds the §4.1 MI interval from the three sample entropies.
///
/// * `h_t`, `h_a`, `h_ta` — sample entropies of the target attribute, the
///   candidate attribute, and their pair,
/// * `u_t`, `u_a` — support sizes; the joint support is bounded by
///   `ū = u_t · u_a` (the paper's worst-case bound, since tracking exact
///   pair supports for all attribute pairs is impractical),
/// * `m`, `n`, `p` — as in [`entropy_bounds`]. Note the *caller* is
///   responsible for budgeting `p` across the three applications of
///   Lemma 3 (the algorithms use `p'_f = p_f / (3·i_max·(h−1))`).
#[allow(clippy::too_many_arguments)]
pub fn mi_bounds(
    h_t: f64,
    h_a: f64,
    h_ta: f64,
    u_t: u64,
    u_a: u64,
    m: u64,
    n: u64,
    p: f64,
) -> MiBounds {
    let lam = lambda(m, n, p);
    let b_t = bias(u_t, m, n);
    let b_a = bias(u_a, m, n);
    let u_pair = u_t.saturating_mul(u_a);
    let b_ta = bias(u_pair, m, n);

    let lower_t = (h_t - lam).max(0.0);
    let lower_a = (h_a - lam).max(0.0);
    let lower_ta = (h_ta - lam).max(0.0);
    let upper_t = h_t + lam + b_t;
    let upper_a = h_a + lam + b_a;
    let upper_ta = h_ta + lam + b_ta;

    let lower = (lower_t + lower_a - upper_ta).max(0.0);
    let upper = (upper_t + upper_a - lower_ta).max(lower);
    MiBounds {
        sample_mi: (h_t + h_a - h_ta).max(0.0),
        lower,
        upper,
        lambda: lam,
        bias_total: b_t + b_a + b_ta,
    }
}

/// Lemma 4: the sample size `M*` guaranteeing `2λ + b(α) ≤ κ`:
///
/// ```text
/// M* = N·(2·log2(N)·sqrt(2·ln(2/p)·N/(N−1/2)) + u)² / ((N−1)·κ²)
/// ```
///
/// The result is capped at `n` (a full scan always achieves width 0).
pub fn sample_size_for_width(kappa: f64, n: u64, u: u64, p: f64) -> u64 {
    if n <= 1 {
        return n;
    }
    if kappa <= 0.0 {
        return n;
    }
    let nf = n as f64;
    let term = 2.0 * nf.log2() * (2.0 * (2.0 / p).ln() * nf / (nf - 0.5)).sqrt() + u as f64;
    let m = nf * term * term / ((nf - 1.0) * kappa * kappa);
    if !m.is_finite() || m >= nf {
        n
    } else {
        (m.ceil() as u64).max(2)
    }
}

/// The paper's initial sample size
/// `M0 = log(h·log N / p_f)·log2²(N) / log2²(u_max)` (§3.1) — the minimum
/// sample the complexity bound needs when the k-th score takes its largest
/// possible value `log2(u_max)` and `ε = 1`.
///
/// Clamped to `[32, n]`: the concentration machinery is vacuous below a few
/// dozen records, and sampling more than `N` is meaningless.
pub fn initial_sample_size(n: u64, h: usize, p_f: f64, u_max: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let nf = (n as f64).max(2.0);
    let log2n = nf.log2();
    let log2umax = (u_max.max(2) as f64).log2();
    let inner = ((h.max(1) as f64) * log2n / p_f).max(std::f64::consts::E);
    let m0 = inner.ln() * log2n * log2n / (log2umax * log2umax);
    (m0.ceil() as u64).clamp(32.min(n), n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_matches_formula_and_decays() {
        let m = 100u64;
        let expected = (100.0f64 / 99.0).log2() + 99.0f64.log2() / 100.0;
        assert!((beta(m) - expected).abs() < 1e-12);
        assert!(beta(1000) < beta(100));
        assert!(beta(1_000_000) < beta(1000));
    }

    #[test]
    fn beta_degenerate_samples_are_infinite() {
        assert!(beta(0).is_infinite());
        assert!(beta(1).is_infinite());
        assert!(beta(2).is_finite());
    }

    #[test]
    fn lambda_is_zero_at_full_sample() {
        assert_eq!(lambda(1000, 1000, 0.01), 0.0);
        assert_eq!(lambda(2000, 1000, 0.01), 0.0);
    }

    #[test]
    fn lambda_shrinks_with_sample_size() {
        let n = 1_000_000;
        let p = 1e-6;
        let l1 = lambda(1_000, n, p);
        let l2 = lambda(10_000, n, p);
        let l3 = lambda(100_000, n, p);
        assert!(l1 > l2 && l2 > l3, "λ must shrink: {l1} {l2} {l3}");
        assert!(l3 > 0.0);
    }

    #[test]
    fn lambda_grows_as_p_shrinks() {
        let n = 100_000;
        assert!(lambda(1000, n, 1e-9) > lambda(1000, n, 1e-3));
    }

    #[test]
    #[should_panic(expected = "failure probability")]
    fn lambda_rejects_bad_p() {
        lambda(10, 100, 0.0);
    }

    #[test]
    fn bias_zero_at_full_sample_and_positive_otherwise() {
        assert_eq!(bias(10, 500, 500), 0.0);
        assert!(bias(10, 100, 500) > 0.0);
        assert!(bias(10, 0, 500).is_infinite());
        assert_eq!(bias(10, 0, 1), 0.0); // n<=1 convention
    }

    #[test]
    fn bias_monotone_in_support_and_sample() {
        let (m, n) = (1000, 100_000);
        assert!(bias(100, m, n) > bias(10, m, n));
        assert!(bias(10, m, n) > bias(10, 10 * m, n));
        // u = 1 (constant attribute): zero bias.
        assert_eq!(bias(1, m, n), 0.0);
    }

    #[test]
    fn entropy_bounds_bracket_and_width_identity() {
        let (m, n, u, p) = (1024u64, 1 << 20, 50u64, 1e-4);
        let h_s = 3.7;
        let b = entropy_bounds(h_s, m, n, u, p);
        assert!(b.lower <= h_s && h_s <= b.upper);
        // Width identity (lower clamp not engaged for this h_s).
        assert!((b.width() - (2.0 * b.lambda + b.bias)).abs() < 1e-12);
        assert!((b.point_estimate() - (b.lower + b.upper) / 2.0).abs() < 1e-15);
    }

    #[test]
    fn entropy_bounds_lower_clamps_at_zero() {
        let b = entropy_bounds(0.01, 64, 1 << 20, 1000, 1e-6);
        assert_eq!(b.lower, 0.0);
        assert!(b.upper > 0.0);
    }

    #[test]
    fn entropy_bounds_collapse_at_full_sample() {
        let b = entropy_bounds(2.5, 1000, 1000, 50, 1e-4);
        assert_eq!(b.lower, 2.5);
        assert_eq!(b.upper, 2.5);
        assert_eq!(b.width(), 0.0);
    }

    #[test]
    fn mi_bounds_bracket_sample_mi_and_match_width_bound() {
        let (m, n) = (4096u64, 1 << 22);
        let p = 1e-5;
        let (h_t, h_a, h_ta) = (2.0, 3.0, 4.2);
        let b = mi_bounds(h_t, h_a, h_ta, 20, 40, m, n, p);
        assert!(b.lower <= b.sample_mi + 1e-12);
        assert!(b.sample_mi <= b.upper + 1e-12);
        // Width is at most 6λ + b' (equality unless clamps engaged).
        assert!(b.width() <= 6.0 * b.lambda + b.bias_total + 1e-9);
    }

    #[test]
    fn mi_bounds_width_identity_without_clamps() {
        // Large sample entropies keep all clamps disengaged.
        let b = mi_bounds(5.0, 6.0, 8.0, 40, 60, 1 << 16, 1 << 24, 1e-4);
        assert!((b.width() - (6.0 * b.lambda + b.bias_total)).abs() < 1e-9);
    }

    #[test]
    fn mi_bounds_collapse_at_full_sample() {
        let b = mi_bounds(2.0, 3.0, 4.0, 10, 10, 500, 500, 1e-4);
        assert!((b.lower - 1.0).abs() < 1e-12);
        assert!((b.upper - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mi_bounds_nonnegative_lower() {
        // Very small MI with wide bounds: lower must clamp at 0.
        let b = mi_bounds(1.0, 1.0, 1.99, 100, 1000, 1 << 20, 1 << 20, 1e-3);
        assert!(b.lower >= 0.0);
    }

    #[test]
    fn sample_size_for_width_achieves_the_width() {
        // Lemma 4's guarantee: at M = M*, 2λ + b ≤ κ.
        let n = 1 << 22;
        let u = 100u64;
        let p = 1e-6;
        for kappa in [0.5f64, 0.2, 0.1] {
            let m = sample_size_for_width(kappa, n, u, p);
            if m < n {
                let width = 2.0 * lambda(m, n, p) + bias(u, m, n);
                assert!(width <= kappa * 1.0001, "κ={kappa}: M*={m} gives width {width}");
            }
        }
    }

    #[test]
    fn sample_size_monotone_in_kappa() {
        let n = 1 << 22;
        let m_loose = sample_size_for_width(1.0, n, 100, 1e-6);
        let m_tight = sample_size_for_width(0.1, n, 100, 1e-6);
        assert!(m_tight >= m_loose);
    }

    #[test]
    fn sample_size_caps_at_n() {
        assert_eq!(sample_size_for_width(1e-12, 1000, 100, 1e-6), 1000);
        assert_eq!(sample_size_for_width(0.0, 1000, 100, 1e-6), 1000);
        assert_eq!(sample_size_for_width(0.5, 1, 100, 1e-6), 1);
    }

    #[test]
    fn initial_sample_size_is_sane() {
        let n = 31_290_943u64; // pus dataset size
        let m0 = initial_sample_size(n, 179, 1.0 / n as f64, 1000);
        assert!(m0 >= 32);
        assert!(m0 < n / 10, "M0 {m0} should be far below N");
        // Tiny populations clamp to N.
        assert_eq!(initial_sample_size(10, 5, 0.01, 4), 10);
        assert_eq!(initial_sample_size(0, 5, 0.01, 4), 0);
    }

    #[test]
    fn initial_sample_size_shrinks_with_u_max() {
        let n = 1 << 24;
        let a = initial_sample_size(n, 100, 1e-6, 4);
        let b = initial_sample_size(n, 100, 1e-6, 1024);
        assert!(a > b, "higher u_max lowers the required M0: {a} vs {b}");
    }
}
