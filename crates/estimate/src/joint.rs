//! Empirical joint entropy and mutual information.
//!
//! Joint entropy over an attribute pair uses the same factorization as the
//! single-attribute case (`H = log2(M) − Σ n_ij·log2(n_ij)/M`) with pair
//! counts from an adaptive [`PairCounter`]. Mutual information follows the
//! paper's Definition 2: `I(α_t, α) = H(α_t) + H(α) − H(α_t, α)`.

use swope_columnar::Column;

use crate::entropy::{column_entropy, EntropyCounter};
use crate::freq::PairCounter;
use crate::xlog::{log2_or_zero, xlog2};

/// Incremental empirical joint-entropy counter for an attribute pair.
#[derive(Debug, Clone)]
pub struct JointEntropyCounter {
    pairs: PairCounter,
    sum_xlog: f64,
    total: u64,
}

impl JointEntropyCounter {
    /// Creates a counter for pairs in `(0..u_t, 0..u_a)`.
    pub fn new(u_t: u32, u_a: u32) -> Self {
        Self { pairs: PairCounter::new(u_t, u_a), sum_xlog: 0.0, total: 0 }
    }

    /// Ingests one sampled record's `(code_t, code_a)` pair. O(1) expected.
    #[inline]
    pub fn add(&mut self, code_t: u32, code_a: u32) {
        let new = self.pairs.add(code_t, code_a);
        self.sum_xlog += xlog2(new) - xlog2(new - 1);
        self.total += 1;
    }

    /// Ingests `k` sampled records sharing one `(code_t, code_a)` pair in
    /// a single telescoped update. The counts match `k` unit
    /// [`JointEntropyCounter::add`] calls exactly; the float accumulator
    /// takes one rounding step instead of `k`, so the canonical-order
    /// delta-apply ingest path is deterministic for any sharding of the
    /// same delta (see `swope_core::shard`).
    #[inline]
    pub fn add_count(&mut self, code_t: u32, code_a: u32, k: u64) {
        if k == 0 {
            return;
        }
        let new = self.pairs.add_n(code_t, code_a, k);
        self.sum_xlog += xlog2(new) - xlog2(new - k);
        self.total += k;
    }

    /// Number of records ingested (`M`).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Empirical joint entropy of the ingested sample, in bits. O(1).
    #[inline]
    pub fn entropy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (log2_or_zero(self.total) - self.sum_xlog / self.total as f64).max(0.0)
    }

    /// Number of distinct pairs observed (`u_{t,α}` restricted to the
    /// sample).
    pub fn observed_distinct(&self) -> usize {
        self.pairs.observed_distinct()
    }

    /// Recomputes entropy from raw pair counts (drift check for tests).
    pub fn entropy_recomputed(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self.pairs.iter().map(|(_, c)| xlog2(c)).sum();
        (log2_or_zero(self.total) - sum / self.total as f64).max(0.0)
    }
}

/// Exact empirical joint entropy `H_D(α_t, α)` over two full columns.
///
/// # Panics
/// Panics if the columns have different lengths.
pub fn joint_entropy(a: &Column, b: &Column) -> f64 {
    assert_eq!(a.len(), b.len(), "joint entropy requires aligned columns");
    let mut c = JointEntropyCounter::new(a.support(), b.support());
    let (ca, cb) = (a.to_codes(), b.to_codes());
    for i in 0..ca.len() {
        c.add(ca[i], cb[i]);
    }
    c.entropy()
}

/// Exact empirical mutual information `I_D(α_t, α)` over two full columns.
///
/// Computed as `H(α_t) + H(α) − H(α_t, α)` (Definition 2). The result is
/// clamped at 0: it is mathematically nonnegative, but the three-term
/// difference can go epsilon-negative in floating point.
pub fn mutual_information(a: &Column, b: &Column) -> f64 {
    (column_entropy(a) + column_entropy(b) - joint_entropy(a, b)).max(0.0)
}

/// Exact empirical MI restricted to `rows`.
pub fn mutual_information_over_rows(a: &Column, b: &Column, rows: &[u32]) -> f64 {
    let mut ha = EntropyCounter::new(a.support());
    let mut hb = EntropyCounter::new(b.support());
    let mut hab = JointEntropyCounter::new(a.support(), b.support());
    for &r in rows {
        let (ca, cb) = (a.code(r as usize), b.code(r as usize));
        ha.add(ca);
        hb.add(cb);
        hab.add(ca, cb);
    }
    (ha.entropy() + hb.entropy() - hab.entropy()).max(0.0)
}

/// Information gain ratio (C4.5's split criterion): `I(a, b) / H(a)`,
/// in `[0, 1]`. Extension beyond the paper — penalizes the plain
/// information gain's bias toward wide-support attributes by dividing by
/// the split attribute `a`'s own entropy. Returns 0 when `H(a) = 0`.
pub fn information_gain_ratio(a: &Column, b: &Column) -> f64 {
    let ha = column_entropy(a);
    if ha <= 0.0 {
        return 0.0;
    }
    (mutual_information(a, b) / ha).clamp(0.0, 1.0)
}

/// Normalized mutual information (symmetric uncertainty):
/// `2·I(a,b) / (H(a) + H(b))`, in `[0, 1]`. Extension beyond the paper,
/// convenient for feature scoring. Returns 0 when both entropies are 0.
pub fn symmetric_uncertainty(a: &Column, b: &Column) -> f64 {
    let ha = column_entropy(a);
    let hb = column_entropy(b);
    let denom = ha + hb;
    if denom <= 0.0 {
        return 0.0;
    }
    (2.0 * mutual_information(a, b) / denom).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(codes: Vec<u32>, support: u32) -> Column {
        Column::new(codes, support).unwrap()
    }

    #[test]
    fn identical_columns_have_mi_equal_to_entropy() {
        let a = col(vec![0, 1, 2, 0, 1, 2], 3);
        let mi = mutual_information(&a, &a);
        let h = column_entropy(&a);
        assert!((mi - h).abs() < 1e-12);
    }

    #[test]
    fn independent_columns_have_zero_mi() {
        // Product distribution: every (a,b) combination equally often.
        let mut ca = Vec::new();
        let mut cb = Vec::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                ca.push(a);
                cb.push(b);
            }
        }
        let mi = mutual_information(&col(ca, 4), &col(cb, 4));
        assert!(mi.abs() < 1e-12, "mi = {mi}");
    }

    #[test]
    fn joint_entropy_of_independent_pair_is_sum() {
        let mut ca = Vec::new();
        let mut cb = Vec::new();
        for a in 0..2u32 {
            for b in 0..8u32 {
                ca.push(a);
                cb.push(b);
            }
        }
        let a = col(ca, 2);
        let b = col(cb, 8);
        let h = joint_entropy(&a, &b);
        assert!((h - (1.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn joint_counter_matches_one_shot() {
        let a = col(vec![0, 0, 1, 1, 2], 3);
        let b = col(vec![1, 1, 0, 1, 0], 2);
        let mut c = JointEntropyCounter::new(3, 2);
        for i in 0..5 {
            c.add(a.code(i), b.code(i));
        }
        assert!((c.entropy() - joint_entropy(&a, &b)).abs() < 1e-12);
        assert!((c.entropy() - c.entropy_recomputed()).abs() < 1e-9);
        assert_eq!(c.observed_distinct(), 4); // (0,1),(1,0),(1,1),(2,0)
    }

    #[test]
    fn add_count_matches_unit_adds_on_counts() {
        let mut unit = JointEntropyCounter::new(4, 4);
        let mut bulk = JointEntropyCounter::new(4, 4);
        for (t, a, k) in [(0u32, 1u32, 5u64), (2, 3, 1), (0, 1, 2), (3, 0, 7), (2, 3, 0)] {
            for _ in 0..k {
                unit.add(t, a);
            }
            bulk.add_count(t, a, k);
        }
        assert_eq!(unit.total(), bulk.total());
        assert_eq!(unit.observed_distinct(), bulk.observed_distinct());
        // The O(1) accumulators round differently (one telescoped step vs
        // k unit steps) but both must agree with the exact recomputation.
        assert!((unit.entropy() - bulk.entropy()).abs() < 1e-9);
        assert!((bulk.entropy() - bulk.entropy_recomputed()).abs() < 1e-9);
    }

    #[test]
    fn mi_is_nonnegative_and_bounded() {
        // MI <= min(H(a), H(b)) for any pair.
        let a = col(vec![0, 1, 0, 1, 2, 2, 1, 0], 3);
        let b = col(vec![1, 1, 0, 0, 1, 0, 1, 0], 2);
        let mi = mutual_information(&a, &b);
        assert!(mi >= 0.0);
        assert!(mi <= column_entropy(&a).min(column_entropy(&b)) + 1e-12);
    }

    #[test]
    fn mi_over_rows_subset() {
        let a = col(vec![0, 1, 0, 1], 2);
        let b = col(vec![0, 1, 1, 0], 2);
        // All rows: a XOR-ish vs b -> MI 0 (each joint cell once).
        let all: Vec<u32> = (0..4).collect();
        assert!(mutual_information_over_rows(&a, &b, &all).abs() < 1e-12);
        // Rows {0,1}: perfectly correlated -> MI = 1 bit.
        assert!((mutual_information_over_rows(&a, &b, &[0, 1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gain_ratio_extremes() {
        let a = col(vec![0, 1, 0, 1], 2);
        // Splitting on a copy of itself: ratio 1.
        assert!((information_gain_ratio(&a, &a) - 1.0).abs() < 1e-12);
        // Constant split attribute: ratio 0 by convention.
        let constant = col(vec![0, 0, 0, 0], 1);
        assert_eq!(information_gain_ratio(&constant, &a), 0.0);
        // Independent attributes: ratio ~0.
        let b = col(vec![0, 0, 1, 1], 2);
        assert!(information_gain_ratio(&a, &b).abs() < 1e-12);
    }

    #[test]
    fn symmetric_uncertainty_range_and_extremes() {
        let a = col(vec![0, 1, 0, 1], 2);
        assert!((symmetric_uncertainty(&a, &a) - 1.0).abs() < 1e-12);
        let constant = col(vec![0, 0, 0, 0], 1);
        assert_eq!(symmetric_uncertainty(&constant, &constant), 0.0);
    }

    #[test]
    fn empty_columns() {
        let a = col(vec![], 2);
        let b = col(vec![], 3);
        assert_eq!(joint_entropy(&a, &b), 0.0);
        assert_eq!(mutual_information(&a, &b), 0.0);
    }

    #[test]
    #[should_panic(expected = "aligned columns")]
    fn misaligned_columns_panic() {
        joint_entropy(&col(vec![0], 1), &col(vec![0, 0], 1));
    }

    #[test]
    fn sparse_pair_counter_path() {
        // Force supports whose product exceeds the dense limit.
        let u = 1 << 11; // 2048; product = 4Mi > 1Mi limit
        let mut c = JointEntropyCounter::new(u, u);
        for i in 0..1000u32 {
            c.add(i % u, (i * 7) % u);
        }
        assert!(c.entropy() > 0.0);
        assert!((c.entropy() - c.entropy_recomputed()).abs() < 1e-9);
    }
}
