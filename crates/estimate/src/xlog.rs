//! Fast `x·log2(x)` evaluation.
//!
//! Entropy accumulators evaluate `n·log2(n)` once per sampled record (for
//! the incremented count) — it is the single hottest scalar operation in
//! the whole system. Counts are small integers with a heavily skewed
//! distribution, so a precomputed table covers almost every call; larger
//! counts fall back to `f64::log2`.

/// Size of the precomputed table. Counts below this (the overwhelming
/// majority for categorical data) avoid the `log2` libm call entirely.
pub const TABLE_SIZE: usize = 1 << 16;

struct XlogTable {
    values: Vec<f64>,
}

impl XlogTable {
    fn build() -> Self {
        let mut values = Vec::with_capacity(TABLE_SIZE);
        values.push(0.0); // 0·log2(0) := 0 (standard entropy convention)
        for x in 1..TABLE_SIZE {
            let xf = x as f64;
            values.push(xf * xf.log2());
        }
        Self { values }
    }
}

fn table() -> &'static XlogTable {
    use std::sync::OnceLock;
    static TABLE: OnceLock<XlogTable> = OnceLock::new();
    TABLE.get_or_init(XlogTable::build)
}

/// Returns `x·log2(x)`, with the entropy convention `0·log2(0) = 0`.
#[inline]
pub fn xlog2(x: u64) -> f64 {
    if (x as usize) < TABLE_SIZE {
        // SAFETY-free fast path: bounds implied by the comparison.
        table().values[x as usize]
    } else {
        let xf = x as f64;
        xf * xf.log2()
    }
}

/// Returns `log2(x)` for positive `x`, `0.0` for `x == 0`.
///
/// Entropy of an empty sample is conventionally 0; this helper keeps that
/// convention in one place.
#[inline]
pub fn log2_or_zero(x: u64) -> f64 {
    if x == 0 {
        0.0
    } else {
        (x as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_convention() {
        assert_eq!(xlog2(0), 0.0);
        assert_eq!(log2_or_zero(0), 0.0);
    }

    #[test]
    fn one_gives_zero() {
        assert_eq!(xlog2(1), 0.0);
        assert_eq!(log2_or_zero(1), 0.0);
    }

    #[test]
    fn table_matches_direct_computation() {
        for x in [2u64, 3, 10, 255, 65_535] {
            let direct = x as f64 * (x as f64).log2();
            assert!((xlog2(x) - direct).abs() < 1e-9, "mismatch at {x}");
        }
    }

    #[test]
    fn fallback_above_table() {
        let x = (TABLE_SIZE as u64) * 3 + 1;
        let direct = x as f64 * (x as f64).log2();
        assert!((xlog2(x) - direct).abs() < 1e-6);
    }

    #[test]
    fn powers_of_two_are_exact() {
        assert_eq!(xlog2(2), 2.0);
        assert_eq!(xlog2(4), 8.0);
        assert_eq!(xlog2(8), 24.0);
        assert_eq!(log2_or_zero(1024), 10.0);
    }

    #[test]
    fn monotone_increasing_from_one() {
        let mut prev = xlog2(1);
        for x in 2..100u64 {
            let v = xlog2(x);
            assert!(v > prev);
            prev = v;
        }
    }
}
