//! Empirical entropy computation.
//!
//! The paper's Eq. 1: `H_S(α) = -Σ_i (m_i/M)·log2(m_i/M)`, which factors as
//!
//! ```text
//! H_S(α) = log2(M) − (1/M)·Σ_i m_i·log2(m_i)
//! ```
//!
//! so maintaining the scalar `Σ m_i·log2(m_i)` under count increments gives
//! **O(1) per sampled record and O(1) per entropy evaluation** — the design
//! choice that keeps each SWOPE iteration linear in the *new* records only
//! (ablated in `bench/entropy`).

use swope_columnar::Column;

use crate::freq::DenseCounter;
use crate::xlog::{log2_or_zero, xlog2};

/// Incremental empirical-entropy counter for one attribute.
///
/// Feed sampled records with [`EntropyCounter::add`]; read the current
/// sample entropy with [`EntropyCounter::entropy`] at any time.
///
/// # Example
///
/// ```
/// use swope_estimate::entropy::EntropyCounter;
///
/// let mut c = EntropyCounter::new(2);
/// for code in [0, 1, 0, 1] {
///     c.add(code);
/// }
/// assert!((c.entropy() - 1.0).abs() < 1e-12); // fair coin: 1 bit
/// ```
#[derive(Debug, Clone)]
pub struct EntropyCounter {
    counts: DenseCounter,
    /// `Σ m_i·log2(m_i)` maintained incrementally.
    sum_xlog: f64,
}

impl EntropyCounter {
    /// Creates a counter for codes `0..support`.
    pub fn new(support: u32) -> Self {
        Self { counts: DenseCounter::new(support), sum_xlog: 0.0 }
    }

    /// Ingests one sampled record with value `code`. O(1).
    #[inline]
    pub fn add(&mut self, code: u32) {
        let new = self.counts.add(code);
        // Δ(Σ m·log2 m) when a count goes c-1 -> c.
        self.sum_xlog += xlog2(new) - xlog2(new - 1);
    }

    /// Ingests a contiguous slice of pre-gathered codes. O(len).
    ///
    /// Equivalent to calling [`EntropyCounter::add`] on each code in
    /// order (same accumulation order, so bitwise-identical results);
    /// exists so the gather-staged ingest path is a plain sequential
    /// pass over a `&[Code]` buffer.
    #[inline]
    pub fn add_all(&mut self, codes: &[u32]) {
        for &code in codes {
            self.add(code);
        }
    }

    /// Ingests `k` records of the same `code` in one step. O(1).
    ///
    /// The accumulator delta telescopes the `k` unit adds exactly in real
    /// arithmetic (`Σ_{i=1..k} xlog2(c+i) − xlog2(c+i−1) = xlog2(c+k) −
    /// xlog2(c)`) and accrues fewer float roundings than `k` calls to
    /// [`EntropyCounter::add`].
    #[inline]
    pub fn add_count(&mut self, code: u32, k: u64) {
        if k == 0 {
            return;
        }
        let new = self.counts.add_n(code, k);
        self.sum_xlog += xlog2(new) - xlog2(new - k);
    }

    /// Number of records ingested (`M`).
    #[inline]
    pub fn total(&self) -> u64 {
        self.counts.total()
    }

    /// Empirical entropy of the ingested sample, in bits. O(1).
    ///
    /// Returns 0 for an empty sample.
    #[inline]
    pub fn entropy(&self) -> f64 {
        let m = self.counts.total();
        if m == 0 {
            return 0.0;
        }
        let h = log2_or_zero(m) - self.sum_xlog / m as f64;
        // Guard tiny negative results from float cancellation.
        h.max(0.0)
    }

    /// Recomputes entropy from the raw counts, bypassing the incremental
    /// accumulator. Used by tests and the accumulator-drift ablation.
    pub fn entropy_recomputed(&self) -> f64 {
        entropy_from_counts(self.counts.counts())
    }

    /// The underlying per-code counts.
    pub fn counts(&self) -> &[u64] {
        self.counts.counts()
    }

    /// Number of codes observed at least once.
    pub fn observed_distinct(&self) -> usize {
        self.counts.observed_distinct()
    }
}

/// Empirical entropy (bits) of a full count vector. O(u).
///
/// `counts[i]` is `n_i`; zero counts contribute nothing.
pub fn entropy_from_counts(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let sum_xlog: f64 = counts.iter().map(|&c| xlog2(c)).sum();
    (log2_or_zero(total) - sum_xlog / total as f64).max(0.0)
}

/// Exact empirical entropy `H_D(α)` of a whole column. One pass, O(N + u).
pub fn column_entropy(column: &Column) -> f64 {
    entropy_from_counts(&column.value_counts())
}

/// Exact empirical entropy of a column restricted to `rows`.
pub fn column_entropy_over_rows(column: &Column, rows: &[u32]) -> f64 {
    let mut counter = EntropyCounter::new(column.support());
    for &r in rows {
        counter.add(column.code(r as usize));
    }
    counter.entropy()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_distribution_hits_log2_u() {
        // 4 values, equally frequent: entropy = 2 bits.
        let mut c = EntropyCounter::new(4);
        for code in [0, 1, 2, 3, 0, 1, 2, 3] {
            c.add(code);
        }
        assert!((c.entropy() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn constant_column_has_zero_entropy() {
        let mut c = EntropyCounter::new(3);
        for _ in 0..100 {
            c.add(1);
        }
        assert_eq!(c.entropy(), 0.0);
    }

    #[test]
    fn empty_sample_has_zero_entropy() {
        let c = EntropyCounter::new(5);
        assert_eq!(c.entropy(), 0.0);
        assert_eq!(entropy_from_counts(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn skewed_distribution_known_value() {
        // p = (3/4, 1/4): H = 2 - 0.75*log2(3) ≈ 0.8112781.
        let mut c = EntropyCounter::new(2);
        for code in [0, 0, 0, 1] {
            c.add(code);
        }
        let expected = 2.0 - 0.75 * 3f64.log2();
        assert!((c.entropy() - expected).abs() < 1e-12);
    }

    #[test]
    fn incremental_matches_recompute_under_many_updates() {
        let mut c = EntropyCounter::new(50);
        // Deterministic pseudo-random-ish update stream.
        let mut x = 12345u64;
        for _ in 0..100_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            c.add((x >> 33) as u32 % 50);
        }
        let drift = (c.entropy() - c.entropy_recomputed()).abs();
        assert!(drift < 1e-9, "accumulator drift {drift}");
    }

    #[test]
    fn add_all_is_bitwise_identical_to_per_code_adds() {
        let mut per_code = EntropyCounter::new(16);
        let mut sliced = EntropyCounter::new(16);
        let mut x = 7u64;
        let codes: Vec<u32> = (0..5000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) as u32 % 16
            })
            .collect();
        for &c in &codes {
            per_code.add(c);
        }
        sliced.add_all(&codes);
        assert_eq!(per_code.total(), sliced.total());
        // Bitwise: same adds in the same order, so the float accumulator
        // must match exactly, not just approximately.
        assert_eq!(per_code.entropy().to_bits(), sliced.entropy().to_bits());
    }

    #[test]
    fn entropy_from_counts_matches_counter() {
        let mut c = EntropyCounter::new(6);
        let stream = [5u32, 0, 0, 3, 3, 3, 2];
        for &s in &stream {
            c.add(s);
        }
        assert!((c.entropy() - entropy_from_counts(c.counts())).abs() < 1e-12);
    }

    #[test]
    fn column_entropy_full_scan() {
        let col = Column::new(vec![0, 1, 0, 1, 2, 2, 2, 2], 3).unwrap();
        // counts = [2,2,4]; H = 3 - (2*1 + 2*1 + 4*2)/8 = 3 - 12/8 = 1.5
        assert!((column_entropy(&col) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn column_entropy_over_rows_subset() {
        let col = Column::new(vec![0, 1, 0, 1, 2, 2], 3).unwrap();
        // Rows {0,1}: one of each of codes 0,1 -> 1 bit.
        assert!((column_entropy_over_rows(&col, &[0, 1]) - 1.0).abs() < 1e-12);
        // Rows over all: counts [2,2,2] -> log2(3).
        let all: Vec<u32> = (0..6).collect();
        assert!((column_entropy_over_rows(&col, &all) - 3f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn entropy_is_bounded_by_log2_support() {
        let mut c = EntropyCounter::new(7);
        let mut x = 99u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            c.add((x >> 33) as u32 % 7);
        }
        assert!(c.entropy() <= 7f64.log2() + 1e-12);
        assert!(c.entropy() >= 0.0);
    }
}
