//! Frequency counters.
//!
//! Two counting regimes appear in SWOPE:
//!
//! * **Single attribute** — support is capped (the paper removes columns
//!   with support > 1000), so a dense `Vec<u64>` indexed by code is optimal.
//! * **Attribute pairs** (joint entropy for MI) — the key space is
//!   `u_t · u_α`, potentially ~10^6. [`PairCounter`] picks a dense array
//!   when that product is small and an open-addressing Fx-hashed map
//!   ([`FxPairMap`]) otherwise, because a mostly-empty multi-megabyte array
//!   costs more to allocate and walk than a compact hash table.

/// Dense per-code counter for one attribute.
///
/// `counts()[c]` is `m_c` in the paper's notation (occurrences of code `c`
/// among sampled records).
#[derive(Debug, Clone)]
pub struct DenseCounter {
    counts: Vec<u64>,
    total: u64,
}

impl DenseCounter {
    /// Creates a counter for codes `0..support`.
    pub fn new(support: u32) -> Self {
        Self { counts: vec![0; support as usize], total: 0 }
    }

    /// Increments the count of `code`, returning the **new** count.
    #[inline]
    pub fn add(&mut self, code: u32) -> u64 {
        let slot = &mut self.counts[code as usize];
        *slot += 1;
        self.total += 1;
        *slot
    }

    /// Adds `k` occurrences of `code` in one step, returning the new
    /// count. Scoped queries drain covered-page histograms through this.
    #[inline]
    pub fn add_n(&mut self, code: u32, k: u64) -> u64 {
        let slot = &mut self.counts[code as usize];
        *slot += k;
        self.total += k;
        *slot
    }

    /// Current count of `code`.
    #[inline]
    pub fn count(&self, code: u32) -> u64 {
        self.counts[code as usize]
    }

    /// Sum of all counts (`M` once every sampled record is ingested).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// All per-code counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of codes with nonzero count.
    pub fn observed_distinct(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Resets all counts to zero.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
    }
}

/// Fx-style hash (Firefox/rustc): one multiply + rotate per word.
///
/// SipHash (std's default) is needlessly slow for trusted integer keys; the
/// perf-book recommends an Fx/FNV-class hash here. Keys are pair codes
/// packed into a `u64`, already well mixed by the multiply.
#[inline]
fn fx_hash_u64(key: u64) -> u64 {
    const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    (key.rotate_left(5) ^ (key >> 32)).wrapping_mul(K)
}

/// An open-addressing hash map from packed pair keys (`u64`) to counts.
///
/// Linear probing, power-of-two capacity, max load factor 7/8. The empty
/// slot marker is `u64::MAX`, which cannot occur as a packed pair key
/// (both halves would need to be `u32::MAX`, and codes are `< support ≤
/// u32::MAX`).
#[derive(Debug, Clone)]
pub struct FxPairMap {
    keys: Vec<u64>,
    values: Vec<u64>,
    len: usize,
    mask: usize,
}

const EMPTY: u64 = u64::MAX;

impl FxPairMap {
    /// Creates a map with capacity for roughly `expected` entries without
    /// rehashing.
    pub fn with_expected(expected: usize) -> Self {
        let cap = (expected.max(8) * 8 / 7).next_power_of_two();
        Self { keys: vec![EMPTY; cap], values: vec![0; cap], len: 0, mask: cap - 1 }
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Increments `key`'s count, returning the new count.
    #[inline]
    pub fn add(&mut self, key: u64) -> u64 {
        debug_assert_ne!(key, EMPTY, "u64::MAX is the empty-slot sentinel");
        if (self.len + 1) * 8 > self.keys.len() * 7 {
            self.grow();
        }
        let mut i = fx_hash_u64(key) as usize & self.mask;
        loop {
            let k = self.keys[i];
            if k == key {
                self.values[i] += 1;
                return self.values[i];
            }
            if k == EMPTY {
                self.keys[i] = key;
                self.values[i] = 1;
                self.len += 1;
                return 1;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Adds `k` occurrences of `key` in one step, returning the new
    /// count. Shard-merged pair histograms drain through this.
    #[inline]
    pub fn add_n(&mut self, key: u64, k: u64) -> u64 {
        debug_assert_ne!(key, EMPTY, "u64::MAX is the empty-slot sentinel");
        if (self.len + 1) * 8 > self.keys.len() * 7 {
            self.grow();
        }
        let mut i = fx_hash_u64(key) as usize & self.mask;
        loop {
            let slot = self.keys[i];
            if slot == key {
                self.values[i] += k;
                return self.values[i];
            }
            if slot == EMPTY {
                self.keys[i] = key;
                self.values[i] = k;
                self.len += 1;
                return k;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Current count of `key` (0 if absent).
    pub fn count(&self, key: u64) -> u64 {
        let mut i = fx_hash_u64(key) as usize & self.mask;
        loop {
            let k = self.keys[i];
            if k == key {
                return self.values[i];
            }
            if k == EMPTY {
                return 0;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Iterates `(key, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.keys.iter().zip(&self.values).filter(|(&k, _)| k != EMPTY).map(|(&k, &v)| (k, v))
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_values = std::mem::replace(&mut self.values, vec![0; new_cap]);
        self.mask = new_cap - 1;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_values) {
            if k != EMPTY {
                self.insert_count(k, v);
            }
        }
    }

    fn insert_count(&mut self, key: u64, value: u64) {
        let mut i = fx_hash_u64(key) as usize & self.mask;
        loop {
            if self.keys[i] == EMPTY {
                self.keys[i] = key;
                self.values[i] = value;
                self.len += 1;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }
}

/// Packs a `(code_t, code_a)` pair into a map key.
#[inline]
pub fn pack_pair(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | b as u64
}

/// Unpacks a map key into its `(code_t, code_a)` pair.
#[inline]
pub fn unpack_pair(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// Key-space size above which [`PairCounter`] switches from a dense array
/// to a hash map. 1 Mi entries ≈ 8 MiB dense, the break-even point in the
/// `pair_counting` bench for typical sample sizes.
pub const DENSE_PAIR_LIMIT: u64 = 1 << 20;

/// Adaptive counter over attribute-value pairs.
///
/// Dense when `u_t · u_α ≤ DENSE_PAIR_LIMIT`, sparse otherwise.
#[derive(Debug, Clone)]
pub enum PairCounter {
    /// Dense array of `u_t · u_α` counts, indexed `code_t · u_α + code_a`.
    Dense {
        /// The counts, length `u_t · u_α`.
        counts: Vec<u64>,
        /// Support of the second attribute (`u_α`), the row stride.
        stride: u32,
        /// Total of all counts.
        total: u64,
        /// Number of nonzero cells.
        distinct: usize,
    },
    /// Sparse Fx-hashed map keyed by [`pack_pair`].
    Sparse {
        /// The map.
        map: FxPairMap,
        /// Total of all counts.
        total: u64,
    },
}

impl PairCounter {
    /// Creates a counter for codes `(0..u_t, 0..u_a)`.
    pub fn new(u_t: u32, u_a: u32) -> Self {
        let key_space = u_t as u64 * u_a as u64;
        if key_space <= DENSE_PAIR_LIMIT {
            Self::Dense { counts: vec![0; key_space as usize], stride: u_a, total: 0, distinct: 0 }
        } else {
            Self::Sparse { map: FxPairMap::with_expected(1024), total: 0 }
        }
    }

    /// Forces the sparse representation regardless of key-space size
    /// (used by the pair-counting ablation bench).
    pub fn new_sparse() -> Self {
        Self::Sparse { map: FxPairMap::with_expected(1024), total: 0 }
    }

    /// Increments the `(a, b)` pair count, returning the new count.
    #[inline]
    pub fn add(&mut self, a: u32, b: u32) -> u64 {
        match self {
            Self::Dense { counts, stride, total, distinct } => {
                let idx = a as usize * *stride as usize + b as usize;
                let slot = &mut counts[idx];
                if *slot == 0 {
                    *distinct += 1;
                }
                *slot += 1;
                *total += 1;
                *slot
            }
            Self::Sparse { map, total } => {
                *total += 1;
                map.add(pack_pair(a, b))
            }
        }
    }

    /// Adds `k` occurrences of the `(a, b)` pair in one step, returning
    /// the new count. Equivalent to `k` unit [`PairCounter::add`] calls
    /// as far as the stored counts are concerned.
    #[inline]
    pub fn add_n(&mut self, a: u32, b: u32, k: u64) -> u64 {
        if k == 0 {
            return self.count(a, b);
        }
        match self {
            Self::Dense { counts, stride, total, distinct } => {
                let idx = a as usize * *stride as usize + b as usize;
                let slot = &mut counts[idx];
                if *slot == 0 {
                    *distinct += 1;
                }
                *slot += k;
                *total += k;
                *slot
            }
            Self::Sparse { map, total } => {
                *total += k;
                map.add_n(pack_pair(a, b), k)
            }
        }
    }

    /// Current count of the `(a, b)` pair.
    pub fn count(&self, a: u32, b: u32) -> u64 {
        match self {
            Self::Dense { counts, stride, .. } => {
                counts[a as usize * *stride as usize + b as usize]
            }
            Self::Sparse { map, .. } => map.count(pack_pair(a, b)),
        }
    }

    /// Sum of all counts.
    pub fn total(&self) -> u64 {
        match self {
            Self::Dense { total, .. } | Self::Sparse { total, .. } => *total,
        }
    }

    /// Number of distinct pairs observed.
    pub fn observed_distinct(&self) -> usize {
        match self {
            Self::Dense { distinct, .. } => *distinct,
            Self::Sparse { map, .. } => map.len(),
        }
    }

    /// Iterates nonzero `(pair_key, count)` entries.
    pub fn iter(&self) -> Box<dyn Iterator<Item = (u64, u64)> + '_> {
        match self {
            Self::Dense { counts, stride, .. } => {
                let stride = *stride as u64;
                Box::new(counts.iter().enumerate().filter(|(_, &c)| c > 0).map(move |(i, &c)| {
                    let a = i as u64 / stride;
                    let b = i as u64 % stride;
                    (pack_pair(a as u32, b as u32), c)
                }))
            }
            Self::Sparse { map, .. } => Box::new(map.iter()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_counter_tracks_counts_and_total() {
        let mut c = DenseCounter::new(4);
        assert_eq!(c.add(1), 1);
        assert_eq!(c.add(1), 2);
        assert_eq!(c.add(3), 1);
        assert_eq!(c.count(1), 2);
        assert_eq!(c.count(0), 0);
        assert_eq!(c.total(), 3);
        assert_eq!(c.observed_distinct(), 2);
        c.clear();
        assert_eq!(c.total(), 0);
        assert_eq!(c.count(1), 0);
    }

    #[test]
    fn fx_map_add_and_count() {
        let mut m = FxPairMap::with_expected(4);
        assert_eq!(m.add(42), 1);
        assert_eq!(m.add(42), 2);
        assert_eq!(m.add(7), 1);
        assert_eq!(m.count(42), 2);
        assert_eq!(m.count(7), 1);
        assert_eq!(m.count(99), 0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn fx_map_grows_correctly() {
        let mut m = FxPairMap::with_expected(2);
        for k in 0..1000u64 {
            m.add(k);
            m.add(k);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(m.count(k), 2, "key {k}");
        }
    }

    #[test]
    fn fx_map_iter_yields_all_entries() {
        let mut m = FxPairMap::with_expected(8);
        for k in [3u64, 5, 9] {
            m.add(k);
        }
        m.add(5);
        let mut entries: Vec<_> = m.iter().collect();
        entries.sort_unstable();
        assert_eq!(entries, vec![(3, 1), (5, 2), (9, 1)]);
    }

    #[test]
    fn fx_map_add_n_matches_repeated_add() {
        let mut unit = FxPairMap::with_expected(2);
        let mut bulk = FxPairMap::with_expected(2);
        for k in 0..300u64 {
            for _ in 0..(k % 5 + 1) {
                unit.add(k);
            }
            bulk.add_n(k, k % 5 + 1);
        }
        assert_eq!(unit.len(), bulk.len());
        for k in 0..300u64 {
            assert_eq!(unit.count(k), bulk.count(k), "key {k}");
        }
    }

    #[test]
    fn pair_counter_add_n_matches_repeated_add() {
        for mut counters in [
            (PairCounter::new(8, 8), PairCounter::new(8, 8)),
            (PairCounter::new_sparse(), PairCounter::new_sparse()),
        ] {
            let (unit, bulk) = (&mut counters.0, &mut counters.1);
            for (a, b, k) in [(0, 0, 3u64), (1, 2, 1), (7, 7, 10), (1, 2, 0)] {
                for _ in 0..k {
                    unit.add(a, b);
                }
                bulk.add_n(a, b, k);
            }
            assert_eq!(unit.total(), bulk.total());
            assert_eq!(unit.observed_distinct(), bulk.observed_distinct());
            for a in 0..8 {
                for b in 0..8 {
                    assert_eq!(unit.count(a, b), bulk.count(a, b), "pair ({a},{b})");
                }
            }
        }
    }

    #[test]
    fn pack_unpack_round_trip() {
        for (a, b) in [(0, 0), (1, 2), (u32::MAX - 1, 7), (1000, 999)] {
            assert_eq!(unpack_pair(pack_pair(a, b)), (a, b));
        }
    }

    #[test]
    fn pair_counter_picks_dense_for_small_spaces() {
        assert!(matches!(PairCounter::new(100, 100), PairCounter::Dense { .. }));
        assert!(matches!(PairCounter::new(1 << 12, 1 << 12), PairCounter::Sparse { .. }));
    }

    #[test]
    fn dense_and_sparse_pair_counters_agree() {
        let mut dense = PairCounter::new(10, 10);
        let mut sparse = PairCounter::new_sparse();
        let pairs = [(0, 0), (1, 2), (0, 0), (9, 9), (1, 2), (1, 2)];
        for &(a, b) in &pairs {
            dense.add(a, b);
            sparse.add(a, b);
        }
        assert_eq!(dense.total(), sparse.total());
        assert_eq!(dense.observed_distinct(), sparse.observed_distinct());
        for a in 0..10 {
            for b in 0..10 {
                assert_eq!(dense.count(a, b), sparse.count(a, b), "pair ({a},{b})");
            }
        }
        let mut d: Vec<_> = dense.iter().collect();
        let mut s: Vec<_> = sparse.iter().collect();
        d.sort_unstable();
        s.sort_unstable();
        assert_eq!(d, s);
    }

    #[test]
    fn pair_counter_iter_dense_reconstructs_pairs() {
        let mut c = PairCounter::new(3, 5);
        c.add(2, 4);
        c.add(0, 1);
        c.add(2, 4);
        let mut entries: Vec<_> = c.iter().map(|(k, v)| (unpack_pair(k), v)).collect();
        entries.sort_unstable();
        assert_eq!(entries, vec![((0, 1), 1), ((2, 4), 2)]);
    }
}
