//! OneShot: the naive fixed-budget sampling estimator.
//!
//! Draw a single sample of a user-chosen size, compute plug-in scores,
//! answer the query from those point estimates — no confidence
//! intervals, no adaptivity, no guarantee. This is what ad-hoc analytics
//! code typically does, and it is the natural strawman for SWOPE's
//! adaptive machinery: at the *same* sample budget SWOPE certifies its
//! answer (or keeps sampling), while OneShot silently returns whatever
//! the sample says. The `ext-oneshot` harness experiment quantifies the
//! accuracy gap.

use swope_columnar::{AttrIndex, Dataset};
use swope_core::state::make_sampler;
use swope_core::{AttrScore, QueryStats, SamplingStrategy, SwopeError, TopKResult};
use swope_estimate::entropy::EntropyCounter;
use swope_estimate::joint::JointEntropyCounter;

/// Top-k on empirical entropy from one fixed-size plug-in sample.
///
/// `sample_size` is clamped to `[1, N]`. The returned scores carry the
/// plug-in estimate as both bounds (there is no interval to report).
pub fn oneshot_entropy_top_k(
    dataset: &Dataset,
    k: usize,
    sample_size: usize,
    seed: u64,
) -> Result<TopKResult, SwopeError> {
    let h = dataset.num_attrs();
    let n = dataset.num_rows();
    if h == 0 || n == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    if k == 0 || k > h {
        return Err(SwopeError::InvalidK { k, candidates: h });
    }
    let m = sample_size.clamp(1, n);
    let mut sampler = make_sampler(n, SamplingStrategy::Row { seed });
    let rows: Vec<u32> = sampler.grow_to(m).to_vec();

    let mut scores: Vec<(AttrIndex, f64)> = (0..h)
        .map(|attr| {
            let col = dataset.column(attr);
            let mut counter = EntropyCounter::new(col.support());
            for &r in &rows {
                counter.add(col.code(r as usize));
            }
            (attr, counter.entropy())
        })
        .collect();
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    scores.truncate(k);

    Ok(TopKResult {
        top: scores.into_iter().map(|(attr, s)| plugin_score(dataset, attr, s)).collect(),
        stats: QueryStats {
            sample_size: m,
            iterations: 1,
            rows_scanned: (m * h) as u64,
            converged_early: m < n,
            trace: Vec::new(),
        },
    })
}

/// Top-k on empirical MI from one fixed-size plug-in sample.
pub fn oneshot_mi_top_k(
    dataset: &Dataset,
    target: AttrIndex,
    k: usize,
    sample_size: usize,
    seed: u64,
) -> Result<TopKResult, SwopeError> {
    let h = dataset.num_attrs();
    let n = dataset.num_rows();
    if h == 0 || n == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    if target >= h {
        return Err(SwopeError::TargetOutOfRange { target, num_attrs: h });
    }
    if h < 2 {
        return Err(SwopeError::NoCandidates);
    }
    if k == 0 || k > h - 1 {
        return Err(SwopeError::InvalidK { k, candidates: h - 1 });
    }
    let m = sample_size.clamp(1, n);
    let mut sampler = make_sampler(n, SamplingStrategy::Row { seed });
    let rows: Vec<u32> = sampler.grow_to(m).to_vec();

    let t_col = dataset.column(target);
    let mut t_counter = EntropyCounter::new(t_col.support());
    let t_codes: Vec<u32> = rows
        .iter()
        .map(|&r| {
            let c = t_col.code(r as usize);
            t_counter.add(c);
            c
        })
        .collect();
    let h_t = t_counter.entropy();

    let mut scores: Vec<(AttrIndex, f64)> = (0..h)
        .filter(|&a| a != target)
        .map(|attr| {
            let col = dataset.column(attr);
            let mut marginal = EntropyCounter::new(col.support());
            let mut joint = JointEntropyCounter::new(t_col.support(), col.support());
            for (&r, &tc) in rows.iter().zip(&t_codes) {
                let c = col.code(r as usize);
                marginal.add(c);
                joint.add(tc, c);
            }
            (attr, (h_t + marginal.entropy() - joint.entropy()).max(0.0))
        })
        .collect();
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    scores.truncate(k);

    Ok(TopKResult {
        top: scores.into_iter().map(|(attr, s)| plugin_score(dataset, attr, s)).collect(),
        stats: QueryStats {
            sample_size: m,
            iterations: 1,
            rows_scanned: (m * (2 * (h - 1) + 1)) as u64,
            converged_early: m < n,
            trace: Vec::new(),
        },
    })
}

fn plugin_score(dataset: &Dataset, attr: AttrIndex, estimate: f64) -> AttrScore {
    AttrScore {
        attr,
        name: dataset.schema().field(attr).map(|f| f.name().to_owned()).unwrap_or_default(),
        estimate,
        lower: estimate,
        upper: estimate,
        retired_iteration: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_entropy_top_k;
    use swope_columnar::{Column, Field, Schema};

    fn cyclic_dataset(n: usize, supports: &[u32]) -> Dataset {
        let fields =
            supports.iter().enumerate().map(|(i, &u)| Field::new(format!("c{i}"), u)).collect();
        let columns = supports
            .iter()
            .map(|&u| Column::new((0..n).map(|r| r as u32 % u).collect(), u).unwrap())
            .collect();
        Dataset::new(Schema::new(fields), columns).unwrap()
    }

    #[test]
    fn full_budget_matches_exact() {
        let ds = cyclic_dataset(5_000, &[2, 64, 8]);
        let oneshot = oneshot_entropy_top_k(&ds, 2, 5_000, 1).unwrap();
        let exact = exact_entropy_top_k(&ds, 2).unwrap();
        assert_eq!(oneshot.attr_indices(), exact.attr_indices());
    }

    #[test]
    fn small_budget_ranks_well_separated_attrs() {
        let ds = cyclic_dataset(100_000, &[2, 256]);
        let r = oneshot_entropy_top_k(&ds, 1, 2_000, 3).unwrap();
        assert_eq!(r.top[0].name, "c1");
        assert_eq!(r.stats.sample_size, 2_000);
    }

    #[test]
    fn plugin_underestimates_wide_supports_at_tiny_budgets() {
        // The Lemma 1 bias in action: a 64-record sample of a 512-value
        // uniform column can see at most 64 distinct values -> H_S <= 6
        // bits although H_D = 9 bits. SWOPE's bias term b(α) accounts for
        // this; OneShot silently under-reports.
        let ds = cyclic_dataset(100_000, &[512]);
        let r = oneshot_entropy_top_k(&ds, 1, 64, 1).unwrap();
        assert!(r.top[0].estimate <= 6.0 + 1e-9);
    }

    #[test]
    fn mi_oneshot_full_budget_matches_exact_ranking() {
        let n = 10_000;
        let fields = vec![Field::new("t", 8), Field::new("copy", 8), Field::new("noise", 8)];
        let cols = vec![
            Column::new((0..n).map(|r| r as u32 % 8).collect(), 8).unwrap(),
            Column::new((0..n).map(|r| r as u32 % 8).collect(), 8).unwrap(),
            Column::new(
                (0..n).map(|r| ((r as u32).wrapping_mul(2654435761) >> 13) % 8).collect(),
                8,
            )
            .unwrap(),
        ];
        let ds = Dataset::new(Schema::new(fields), cols).unwrap();
        let r = oneshot_mi_top_k(&ds, 0, 1, n, 1).unwrap();
        assert_eq!(r.top[0].name, "copy");
    }

    #[test]
    fn validation() {
        let ds = cyclic_dataset(100, &[2, 4]);
        assert!(oneshot_entropy_top_k(&ds, 0, 50, 1).is_err());
        assert!(oneshot_entropy_top_k(&ds, 3, 50, 1).is_err());
        assert!(oneshot_mi_top_k(&ds, 5, 1, 50, 1).is_err());
    }

    #[test]
    fn budget_is_clamped() {
        let ds = cyclic_dataset(100, &[2, 4]);
        let r = oneshot_entropy_top_k(&ds, 1, 10_000, 1).unwrap();
        assert_eq!(r.stats.sample_size, 100);
        let r = oneshot_entropy_top_k(&ds, 1, 0, 1).unwrap();
        assert_eq!(r.stats.sample_size, 1);
    }
}
