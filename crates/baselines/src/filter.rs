//! EntropyFilter (Wang & Ding, KDD'19): exact filtering via adaptive
//! sampling.
//!
//! EntropyFilter decides each attribute only when its confidence interval
//! clears the threshold entirely: accept when `H̲(α) > η`, reject when
//! `H̄(α) < η`, otherwise keep sampling. An attribute whose score sits at
//! distance `δ` from `η` therefore needs `Ω(1/δ²)` samples — and an
//! attribute exactly *at* the threshold forces a full scan. SWOPE's
//! Algorithm 2 relaxes both sides by `ε·η`, which is the entire measured
//! difference in the filtering benchmarks.

use swope_columnar::Dataset;
use swope_core::state::{make_sampler, EntropyState};
use swope_core::{
    parallel::for_each_mut, AttrScore, FilterResult, QueryStats, SwopeConfig, SwopeError,
};
use swope_sampling::DoublingSchedule;

use crate::score_of;

/// Exact filtering on empirical entropy by adaptive sampling
/// (EntropyFilter).
///
/// The `config`'s `epsilon` is ignored; with probability `1 − p_f` the
/// returned set is exactly `{α : H(α) ≥ η}`.
pub fn entropy_filter_exact_sampling(
    dataset: &Dataset,
    eta: f64,
    config: &SwopeConfig,
) -> Result<FilterResult, SwopeError> {
    config.validate()?;
    if !eta.is_finite() || eta < 0.0 {
        return Err(SwopeError::InvalidThreshold(eta));
    }
    let h = dataset.num_attrs();
    let n = dataset.num_rows();
    if h == 0 || n == 0 {
        return Err(SwopeError::EmptyDataset);
    }

    let p_f = config.resolve_p_f(dataset);
    let m0 = config.resolve_m0(dataset, p_f);
    let schedule = DoublingSchedule::new(n, m0);
    let p_prime = p_f / (schedule.i_max() as f64 * h as f64);

    let mut sampler = make_sampler(n, config.sampling);
    let mut states: Vec<EntropyState> =
        (0..h).map(|attr| EntropyState::new(dataset, attr)).collect();
    let mut accepted: Vec<AttrScore> = Vec::new();
    let mut stats = QueryStats::default();

    let mut m_target = schedule.m0();
    while !states.is_empty() {
        stats.iterations += 1;
        let delta: Vec<u32> = sampler.grow_to(m_target).to_vec();
        let m = sampler.sampled();
        stats.sample_size = m;
        stats.rows_scanned += (delta.len() * states.len()) as u64;

        for_each_mut(&mut states, config.threads, |st| {
            st.ingest(dataset.column(st.attr), &delta);
            st.update_bounds(n as u64, p_prime);
        });

        let exact_now = m >= n;
        states.retain(|st| {
            let b = &st.bounds;
            if b.lower > eta || (exact_now && b.point_estimate() >= eta) {
                accepted.push(score_of(dataset, st.attr, b));
                false
            } else {
                !(b.upper < eta || exact_now)
            }
        });

        if states.is_empty() {
            stats.converged_early = m < n;
            break;
        }
        m_target = (m * 2).min(n);
    }

    accepted.sort_by(|a, b| {
        b.estimate
            .partial_cmp(&a.estimate)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.attr.cmp(&b.attr))
    });
    Ok(FilterResult { accepted, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_entropy_filter;
    use swope_columnar::{Column, Field, Schema};

    fn cyclic_dataset(n: usize, supports: &[u32]) -> Dataset {
        let fields =
            supports.iter().enumerate().map(|(i, &u)| Field::new(format!("c{i}"), u)).collect();
        let columns = supports
            .iter()
            .map(|&u| Column::new((0..n).map(|r| r as u32 % u).collect(), u).unwrap())
            .collect();
        Dataset::new(Schema::new(fields), columns).unwrap()
    }

    #[test]
    fn matches_exact_answer() {
        let ds = cyclic_dataset(30_000, &[2, 8, 32, 128, 512]);
        let sampled = entropy_filter_exact_sampling(&ds, 4.0, &SwopeConfig::default()).unwrap();
        let exact = exact_entropy_filter(&ds, 4.0).unwrap();
        let mut a = sampled.attr_indices();
        let mut b = exact.attr_indices();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn converges_early_when_scores_are_far_from_threshold() {
        let ds = cyclic_dataset(200_000, &[2, 256]);
        let r = entropy_filter_exact_sampling(&ds, 4.0, &SwopeConfig::default()).unwrap();
        assert!(r.stats.converged_early, "{:?}", r.stats);
    }

    #[test]
    fn score_at_threshold_forces_full_scan() {
        // c0 has entropy exactly 2.0 bits = η: EntropyFilter cannot decide
        // it from bounds and must scan to N.
        let ds = cyclic_dataset(4_096, &[4, 64]);
        let r = entropy_filter_exact_sampling(&ds, 2.0, &SwopeConfig::default()).unwrap();
        assert_eq!(r.stats.sample_size, 4_096);
        // And the answer is still exact (2.0 >= 2.0 included).
        assert!(r.contains(0));
        assert!(r.contains(1));
    }

    #[test]
    fn threshold_above_everything_rejects_all() {
        let ds = cyclic_dataset(10_000, &[2, 8]);
        let r = entropy_filter_exact_sampling(&ds, 9.0, &SwopeConfig::default()).unwrap();
        assert!(r.accepted.is_empty());
    }

    #[test]
    fn validation() {
        let ds = cyclic_dataset(100, &[2]);
        assert!(entropy_filter_exact_sampling(&ds, -0.1, &SwopeConfig::default()).is_err());
        assert!(entropy_filter_exact_sampling(&ds, f64::NAN, &SwopeConfig::default()).is_err());
    }
}
