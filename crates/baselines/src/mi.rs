//! EntropyRank / EntropyFilter lifted to empirical mutual information,
//! the paper's §6.3 competitors.
//!
//! Identical adaptive structure to the entropy baselines, with the §4.1 MI
//! confidence intervals and the `p'_f = p_f/(3·i_max·(h−1))` budget.

use swope_columnar::{AttrIndex, Dataset};
use swope_core::state::{make_sampler, MiState, TargetState};
use swope_core::{
    parallel::for_each_mut, AttrScore, FilterResult, QueryStats, SwopeConfig, SwopeError,
    TopKResult,
};
use swope_sampling::DoublingSchedule;

use crate::score_of_mi;

/// Exact top-k on empirical MI against `target` by adaptive sampling
/// (EntropyRank-MI). `config.epsilon` is ignored.
pub fn mi_rank_top_k(
    dataset: &Dataset,
    target: AttrIndex,
    k: usize,
    config: &SwopeConfig,
) -> Result<TopKResult, SwopeError> {
    config.validate()?;
    let h = dataset.num_attrs();
    let n = dataset.num_rows();
    if h == 0 || n == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    if target >= h {
        return Err(SwopeError::TargetOutOfRange { target, num_attrs: h });
    }
    if h < 2 {
        return Err(SwopeError::NoCandidates);
    }
    let candidates = h - 1;
    if k == 0 || k > candidates {
        return Err(SwopeError::InvalidK { k, candidates });
    }

    let p_f = config.resolve_p_f(dataset);
    let m0 = config.resolve_m0(dataset, p_f);
    let schedule = DoublingSchedule::new(n, m0);
    let p_prime = p_f / (3.0 * schedule.i_max() as f64 * candidates as f64);

    let mut sampler = make_sampler(n, config.sampling);
    let mut target_state = TargetState::new(dataset, target);
    let u_t = target_state.support;
    let mut states: Vec<MiState> =
        (0..h).filter(|&a| a != target).map(|a| MiState::new(a, u_t, dataset.support(a))).collect();
    let mut stats = QueryStats::default();

    let mut m_target = schedule.m0();
    loop {
        stats.iterations += 1;
        let delta: Vec<u32> = sampler.grow_to(m_target).to_vec();
        let m = sampler.sampled();
        stats.sample_size = m;

        let t_codes = target_state.ingest(dataset.column(target), &delta);
        let h_t = target_state.sample_entropy();
        stats.rows_scanned += delta.len() as u64;
        stats.rows_scanned += (2 * delta.len() * states.len()) as u64;

        for_each_mut(&mut states, config.threads, |st| {
            st.ingest(dataset.column(st.attr), &t_codes, &delta);
            st.update_bounds(h_t, u_t, n as u64, p_prime);
        });

        let mut by_lower: Vec<usize> = (0..states.len()).collect();
        by_lower.sort_by(|&a, &b| {
            states[b]
                .bounds
                .lower
                .partial_cmp(&states[a].bounds.lower)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let kth_lower = states[by_lower[k - 1]].bounds.lower;
        let max_outside_upper =
            by_lower[k..].iter().map(|&i| states[i].bounds.upper).fold(f64::NEG_INFINITY, f64::max);
        let separated = by_lower.len() == k || kth_lower >= max_outside_upper;

        if separated || m >= n {
            stats.converged_early = separated && m < n;
            by_lower.truncate(k);
            let top = by_lower
                .iter()
                .map(|&i| score_of_mi(dataset, states[i].attr, &states[i].bounds))
                .collect();
            return Ok(TopKResult { top, stats });
        }

        states.retain(|st| st.bounds.upper >= kth_lower);
        m_target = (m * 2).min(n);
    }
}

/// Exact filtering on empirical MI against `target` by adaptive sampling
/// (EntropyFilter-MI). `config.epsilon` is ignored.
pub fn mi_filter_exact_sampling(
    dataset: &Dataset,
    target: AttrIndex,
    eta: f64,
    config: &SwopeConfig,
) -> Result<FilterResult, SwopeError> {
    config.validate()?;
    if !eta.is_finite() || eta < 0.0 {
        return Err(SwopeError::InvalidThreshold(eta));
    }
    let h = dataset.num_attrs();
    let n = dataset.num_rows();
    if h == 0 || n == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    if target >= h {
        return Err(SwopeError::TargetOutOfRange { target, num_attrs: h });
    }
    if h < 2 {
        return Err(SwopeError::NoCandidates);
    }
    let candidates = h - 1;

    let p_f = config.resolve_p_f(dataset);
    let m0 = config.resolve_m0(dataset, p_f);
    let schedule = DoublingSchedule::new(n, m0);
    let p_prime = p_f / (3.0 * schedule.i_max() as f64 * candidates as f64);

    let mut sampler = make_sampler(n, config.sampling);
    let mut target_state = TargetState::new(dataset, target);
    let u_t = target_state.support;
    let mut states: Vec<MiState> =
        (0..h).filter(|&a| a != target).map(|a| MiState::new(a, u_t, dataset.support(a))).collect();
    let mut accepted: Vec<AttrScore> = Vec::new();
    let mut stats = QueryStats::default();

    let mut m_target = schedule.m0();
    while !states.is_empty() {
        stats.iterations += 1;
        let delta: Vec<u32> = sampler.grow_to(m_target).to_vec();
        let m = sampler.sampled();
        stats.sample_size = m;

        let t_codes = target_state.ingest(dataset.column(target), &delta);
        let h_t = target_state.sample_entropy();
        stats.rows_scanned += delta.len() as u64;
        stats.rows_scanned += (2 * delta.len() * states.len()) as u64;

        for_each_mut(&mut states, config.threads, |st| {
            st.ingest(dataset.column(st.attr), &t_codes, &delta);
            st.update_bounds(h_t, u_t, n as u64, p_prime);
        });

        let exact_now = m >= n;
        states.retain(|st| {
            let b = &st.bounds;
            if b.lower > eta || (exact_now && b.point_estimate() >= eta) {
                accepted.push(score_of_mi(dataset, st.attr, b));
                false
            } else {
                !(b.upper < eta || exact_now)
            }
        });

        if states.is_empty() {
            stats.converged_early = m < n;
            break;
        }
        m_target = (m * 2).min(n);
    }

    accepted.sort_by(|a, b| {
        b.estimate
            .partial_cmp(&a.estimate)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.attr.cmp(&b.attr))
    });
    Ok(FilterResult { accepted, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_mi_filter, exact_mi_top_k};
    use swope_columnar::{Column, Field, Schema};

    fn correlated_dataset(n: usize) -> Dataset {
        let target: Vec<u32> = (0..n).map(|r| (r as u32) % 4).collect();
        let mut fields = vec![Field::new("target", 4)];
        let mut columns = vec![Column::new(target.clone(), 4).unwrap()];
        for (i, noise_mod) in [1u32, 3, 7].iter().enumerate() {
            let codes: Vec<u32> = (0..n)
                .map(|r| {
                    if (r as u32) % (noise_mod + 1) == 0 {
                        ((r as u32).wrapping_mul(2654435761) >> 13) % 4
                    } else {
                        target[r]
                    }
                })
                .collect();
            fields.push(Field::new(format!("c{i}"), 4));
            columns.push(Column::new(codes, 4).unwrap());
        }
        fields.push(Field::new("indep", 4));
        columns.push(
            Column::new(
                (0..n).map(|r| ((r as u32).wrapping_mul(2654435761) >> 13) % 4).collect(),
                4,
            )
            .unwrap(),
        );
        Dataset::new(Schema::new(fields), columns).unwrap()
    }

    #[test]
    fn rank_matches_exact_top_k() {
        let ds = correlated_dataset(30_000);
        let rank = mi_rank_top_k(&ds, 0, 2, &SwopeConfig::default()).unwrap();
        let exact = exact_mi_top_k(&ds, 0, 2).unwrap();
        assert_eq!(rank.attr_indices(), exact.attr_indices());
    }

    #[test]
    fn filter_matches_exact_answer() {
        let ds = correlated_dataset(30_000);
        let sampled = mi_filter_exact_sampling(&ds, 0, 0.5, &SwopeConfig::default()).unwrap();
        let exact = exact_mi_filter(&ds, 0, 0.5).unwrap();
        let mut a = sampled.attr_indices();
        let mut b = exact.attr_indices();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn target_excluded() {
        let ds = correlated_dataset(5_000);
        let r = mi_rank_top_k(&ds, 0, 4, &SwopeConfig::default()).unwrap();
        assert!(r.top.iter().all(|s| s.attr != 0));
        let f = mi_filter_exact_sampling(&ds, 0, 0.0, &SwopeConfig::default()).unwrap();
        assert!(!f.contains(0));
    }

    #[test]
    fn validation() {
        let ds = correlated_dataset(500);
        let cfg = SwopeConfig::default();
        assert!(mi_rank_top_k(&ds, 9, 1, &cfg).is_err());
        assert!(mi_rank_top_k(&ds, 0, 0, &cfg).is_err());
        assert!(mi_filter_exact_sampling(&ds, 9, 0.1, &cfg).is_err());
        assert!(mi_filter_exact_sampling(&ds, 0, -1.0, &cfg).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = correlated_dataset(20_000);
        let c = SwopeConfig::default().with_seed(77);
        assert_eq!(mi_rank_top_k(&ds, 0, 2, &c).unwrap(), mi_rank_top_k(&ds, 0, 2, &c).unwrap());
        assert_eq!(
            mi_filter_exact_sampling(&ds, 0, 0.3, &c).unwrap(),
            mi_filter_exact_sampling(&ds, 0, 0.3, &c).unwrap()
        );
    }
}
