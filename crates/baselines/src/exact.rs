//! Exact full-scan baselines (`O(hN)`), the paper's *Exact* competitor.

use swope_columnar::{AttrIndex, Dataset};
use swope_core::{AttrScore, FilterResult, QueryStats, SwopeError, TopKResult};
use swope_estimate::entropy::column_entropy;
use swope_estimate::joint::mutual_information;

/// Exact empirical entropy of every attribute, one full scan per column.
pub fn exact_entropy_scores(dataset: &Dataset) -> Vec<f64> {
    (0..dataset.num_attrs()).map(|a| column_entropy(dataset.column(a))).collect()
}

/// Exact empirical mutual information of every attribute against
/// `target` (`None` at the target's own position would be ill-defined, so
/// the target position holds `I(α_t, α_t) = H(α_t)`; callers querying
/// candidates should skip index `target`).
pub fn exact_mi_scores(dataset: &Dataset, target: AttrIndex) -> Vec<f64> {
    let t = dataset.column(target);
    (0..dataset.num_attrs()).map(|a| mutual_information(t, dataset.column(a))).collect()
}

fn exact_stats(dataset: &Dataset, structures: usize) -> QueryStats {
    QueryStats {
        sample_size: dataset.num_rows(),
        iterations: 1,
        rows_scanned: dataset.num_rows() as u64 * structures as u64,
        converged_early: false,
        trace: Vec::new(),
    }
}

fn score(dataset: &Dataset, attr: AttrIndex, value: f64) -> AttrScore {
    AttrScore {
        attr,
        name: dataset.schema().field(attr).map(|f| f.name().to_owned()).unwrap_or_default(),
        estimate: value,
        lower: value,
        upper: value,
        retired_iteration: 0,
    }
}

fn validate(dataset: &Dataset) -> Result<(), SwopeError> {
    if dataset.num_attrs() == 0 || dataset.num_rows() == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    Ok(())
}

/// Exact top-k on empirical entropy: full scan, sort, take k.
pub fn exact_entropy_top_k(dataset: &Dataset, k: usize) -> Result<TopKResult, SwopeError> {
    validate(dataset)?;
    let h = dataset.num_attrs();
    if k == 0 || k > h {
        return Err(SwopeError::InvalidK { k, candidates: h });
    }
    let scores = exact_entropy_scores(dataset);
    let order = rank_desc(&scores, k);
    Ok(TopKResult {
        top: order.into_iter().map(|a| score(dataset, a, scores[a])).collect(),
        stats: exact_stats(dataset, h),
    })
}

/// Exact filtering on empirical entropy: attributes with `H(α) ≥ η`.
pub fn exact_entropy_filter(dataset: &Dataset, eta: f64) -> Result<FilterResult, SwopeError> {
    validate(dataset)?;
    if !eta.is_finite() || eta < 0.0 {
        return Err(SwopeError::InvalidThreshold(eta));
    }
    let scores = exact_entropy_scores(dataset);
    let mut accepted: Vec<AttrScore> = scores
        .iter()
        .enumerate()
        .filter(|&(_, &s)| s >= eta)
        .map(|(a, &s)| score(dataset, a, s))
        .collect();
    accepted.sort_by(|a, b| b.estimate.partial_cmp(&a.estimate).unwrap().then(a.attr.cmp(&b.attr)));
    Ok(FilterResult { accepted, stats: exact_stats(dataset, dataset.num_attrs()) })
}

/// Exact top-k on empirical mutual information against `target`.
pub fn exact_mi_top_k(
    dataset: &Dataset,
    target: AttrIndex,
    k: usize,
) -> Result<TopKResult, SwopeError> {
    validate(dataset)?;
    let h = dataset.num_attrs();
    if target >= h {
        return Err(SwopeError::TargetOutOfRange { target, num_attrs: h });
    }
    if h < 2 {
        return Err(SwopeError::NoCandidates);
    }
    if k == 0 || k > h - 1 {
        return Err(SwopeError::InvalidK { k, candidates: h - 1 });
    }
    let scores = exact_mi_scores(dataset, target);
    let candidates: Vec<AttrIndex> = (0..h).filter(|&a| a != target).collect();
    let mut order = candidates;
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
    order.truncate(k);
    Ok(TopKResult {
        top: order.into_iter().map(|a| score(dataset, a, scores[a])).collect(),
        // Per candidate: marginal + joint structures, plus the target scan.
        stats: exact_stats(dataset, 2 * (h - 1) + 1),
    })
}

/// Exact filtering on empirical mutual information against `target`.
pub fn exact_mi_filter(
    dataset: &Dataset,
    target: AttrIndex,
    eta: f64,
) -> Result<FilterResult, SwopeError> {
    validate(dataset)?;
    if !eta.is_finite() || eta < 0.0 {
        return Err(SwopeError::InvalidThreshold(eta));
    }
    let h = dataset.num_attrs();
    if target >= h {
        return Err(SwopeError::TargetOutOfRange { target, num_attrs: h });
    }
    if h < 2 {
        return Err(SwopeError::NoCandidates);
    }
    let scores = exact_mi_scores(dataset, target);
    let mut accepted: Vec<AttrScore> = (0..h)
        .filter(|&a| a != target && scores[a] >= eta)
        .map(|a| score(dataset, a, scores[a]))
        .collect();
    accepted.sort_by(|a, b| b.estimate.partial_cmp(&a.estimate).unwrap().then(a.attr.cmp(&b.attr)));
    Ok(FilterResult { accepted, stats: exact_stats(dataset, 2 * (h - 1) + 1) })
}

fn rank_desc(scores: &[f64], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
    order.truncate(k);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use swope_columnar::{Column, Field, Schema};

    fn dataset() -> Dataset {
        let schema =
            Schema::new(vec![Field::new("low", 2), Field::new("high", 8), Field::new("mid", 4)]);
        let n = 800usize;
        let cols = vec![
            Column::new((0..n).map(|r| (r / 400) as u32).collect(), 2).unwrap(),
            Column::new((0..n).map(|r| (r % 8) as u32).collect(), 8).unwrap(),
            Column::new((0..n).map(|r| (r % 4) as u32).collect(), 4).unwrap(),
        ];
        Dataset::new(schema, cols).unwrap()
    }

    #[test]
    fn entropy_scores_match_hand_computation() {
        let s = exact_entropy_scores(&dataset());
        assert!((s[0] - 1.0).abs() < 1e-12);
        assert!((s[1] - 3.0).abs() < 1e-12);
        assert!((s[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_orders_by_score() {
        let r = exact_entropy_top_k(&dataset(), 2).unwrap();
        let names: Vec<&str> = r.top.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["high", "mid"]);
        assert!(!r.stats.converged_early);
    }

    #[test]
    fn filter_threshold_semantics_are_inclusive() {
        let r = exact_entropy_filter(&dataset(), 2.0).unwrap();
        let names: Vec<&str> = r.accepted.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["high", "mid"]); // H = 2.0 is included
    }

    #[test]
    fn mi_scores_and_top_k() {
        let ds = dataset();
        // "mid" (r % 4) is a deterministic function of "high" (r % 8):
        // I(high, mid) = H(mid) = 2 bits; I(high, low) is 0 (r/400 is
        // independent of r%8 over 800 rows... 400 % 8 == 0 so yes).
        let s = exact_mi_scores(&ds, 1);
        assert!((s[2] - 2.0).abs() < 1e-9);
        assert!(s[0].abs() < 1e-9);
        let r = exact_mi_top_k(&ds, 1, 1).unwrap();
        assert_eq!(r.top[0].name, "mid");
    }

    #[test]
    fn mi_filter_excludes_target() {
        let r = exact_mi_filter(&dataset(), 1, 0.0).unwrap();
        assert!(r.accepted.iter().all(|s| s.attr != 1));
        assert_eq!(r.accepted.len(), 2);
    }

    #[test]
    fn validation() {
        let ds = dataset();
        assert!(exact_entropy_top_k(&ds, 0).is_err());
        assert!(exact_entropy_top_k(&ds, 4).is_err());
        assert!(exact_entropy_filter(&ds, -1.0).is_err());
        assert!(exact_mi_top_k(&ds, 9, 1).is_err());
        assert!(exact_mi_filter(&ds, 9, 0.1).is_err());
    }

    #[test]
    fn exact_bounds_are_degenerate() {
        let r = exact_entropy_top_k(&dataset(), 3).unwrap();
        for s in &r.top {
            assert_eq!(s.lower, s.estimate);
            assert_eq!(s.upper, s.estimate);
        }
    }
}
