//! # swope-baselines
//!
//! The comparator algorithms of the SWOPE paper's evaluation (§6):
//!
//! * [`exact`] — full-scan exact answers for all four query types. The
//!   `O(hN)` baseline every sampling method is measured against.
//! * [`rank`] — **EntropyRank** (Wang & Ding, KDD'19, the paper's reference \[32\]):
//!   adaptive sampling that returns the *exact* top-k, stopping only when
//!   the k-th largest lower bound separates from the (k+1)-th largest
//!   upper bound. Its cost scales with `1/Δ²` where `Δ` is the score gap —
//!   the weakness SWOPE's approximate stopping rule removes.
//! * [`filter`] — **EntropyFilter** (same paper): exact filtering,
//!   deciding each attribute only when its interval clears the threshold
//!   entirely; cost scales with `1/δ²` where `δ` is the smallest
//!   score-to-threshold distance.
//! * [`mi`] — the EntropyRank/EntropyFilter machinery lifted to empirical
//!   mutual information, as used in the paper's §6.3 comparisons.
//!
//! All baselines share SWOPE's sampling and bound substrate
//! (`swope-sampling`, `swope-estimate`, `swope-core::state`), so measured
//! differences isolate the *stopping rules* — the paper's contribution —
//! rather than implementation details.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod exact;
pub mod filter;
pub mod mi;
pub mod oneshot;
pub mod rank;
mod util;

pub use oneshot::{oneshot_entropy_top_k, oneshot_mi_top_k};
pub use util::{score_of, score_of_mi};

pub use exact::{
    exact_entropy_filter, exact_entropy_scores, exact_entropy_top_k, exact_mi_filter,
    exact_mi_scores, exact_mi_top_k,
};
pub use filter::entropy_filter_exact_sampling;
pub use mi::{mi_filter_exact_sampling, mi_rank_top_k};
pub use rank::entropy_rank_top_k;
