//! Small shared helpers for assembling baseline results.

use swope_columnar::{AttrIndex, Dataset};
use swope_core::AttrScore;
use swope_estimate::bounds::{EntropyBounds, MiBounds};

/// Builds an [`AttrScore`] from an entropy confidence interval.
pub fn score_of(dataset: &Dataset, attr: AttrIndex, bounds: &EntropyBounds) -> AttrScore {
    AttrScore {
        attr,
        name: dataset.schema().field(attr).map(|f| f.name().to_owned()).unwrap_or_default(),
        estimate: bounds.point_estimate(),
        lower: bounds.lower,
        upper: bounds.upper,
        retired_iteration: 0,
    }
}

/// Builds an [`AttrScore`] from an MI confidence interval.
pub fn score_of_mi(dataset: &Dataset, attr: AttrIndex, bounds: &MiBounds) -> AttrScore {
    AttrScore {
        attr,
        name: dataset.schema().field(attr).map(|f| f.name().to_owned()).unwrap_or_default(),
        estimate: bounds.point_estimate(),
        lower: bounds.lower,
        upper: bounds.upper,
        retired_iteration: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swope_columnar::{Column, Field, Schema};
    use swope_estimate::bounds::entropy_bounds;

    #[test]
    fn score_of_copies_interval() {
        let schema = Schema::new(vec![Field::new("x", 2)]);
        let ds = Dataset::new(schema, vec![Column::new(vec![0, 1], 2).unwrap()]).unwrap();
        let b = entropy_bounds(1.0, 100, 1000, 2, 0.01);
        let s = score_of(&ds, 0, &b);
        assert_eq!(s.name, "x");
        assert_eq!(s.lower, b.lower);
        assert_eq!(s.upper, b.upper);
        assert_eq!(s.estimate, b.point_estimate());
    }
}
