//! EntropyRank (Wang & Ding, KDD'19): exact top-k via adaptive sampling.
//!
//! EntropyRank uses the same sampling-without-replacement bounds as SWOPE
//! but insists on the *exact* top-k answer: it keeps sampling until the
//! k-th largest lower bound is no smaller than the (k+1)-th largest upper
//! bound, so the top-k set is provably separated from the rest. When the
//! gap `Δ` between the k-th and (k+1)-th scores is small, that separation
//! requires `Ω(1/Δ²)` samples — the cost SWOPE's approximate stopping rule
//! avoids.
//!
//! Implementation notes: we run the same doubling schedule, `p'_f` budget
//! split, bound computation, and pruning as `swope-core`, so SWOPE vs
//! EntropyRank benchmark deltas isolate the stopping rules. (The original
//! paper samples in fixed-size batches; a geometric schedule only changes
//! constants and matches the complexity the SWOPE paper quotes for it.)

use swope_columnar::Dataset;
use swope_core::state::{make_sampler, EntropyState};
use swope_core::{parallel::for_each_mut, QueryStats, SwopeConfig, SwopeError, TopKResult};
use swope_sampling::DoublingSchedule;

use crate::score_of;

/// Exact top-k on empirical entropy by adaptive sampling (EntropyRank).
///
/// The `config`'s `epsilon` is ignored (the answer is exact); its
/// failure probability, sampling strategy, `M0` override, and thread
/// count are honoured. With probability `1 − p_f` the returned set *is*
/// the exact top-k.
pub fn entropy_rank_top_k(
    dataset: &Dataset,
    k: usize,
    config: &SwopeConfig,
) -> Result<TopKResult, SwopeError> {
    config.validate()?;
    let h = dataset.num_attrs();
    let n = dataset.num_rows();
    if h == 0 || n == 0 {
        return Err(SwopeError::EmptyDataset);
    }
    if k == 0 || k > h {
        return Err(SwopeError::InvalidK { k, candidates: h });
    }

    let p_f = config.resolve_p_f(dataset);
    let m0 = config.resolve_m0(dataset, p_f);
    let schedule = DoublingSchedule::new(n, m0);
    let p_prime = p_f / (schedule.i_max() as f64 * h as f64);

    let mut sampler = make_sampler(n, config.sampling);
    let mut states: Vec<EntropyState> =
        (0..h).map(|attr| EntropyState::new(dataset, attr)).collect();
    let mut stats = QueryStats::default();

    let mut m_target = schedule.m0();
    loop {
        stats.iterations += 1;
        let delta: Vec<u32> = sampler.grow_to(m_target).to_vec();
        let m = sampler.sampled();
        stats.sample_size = m;
        stats.rows_scanned += (delta.len() * states.len()) as u64;

        for_each_mut(&mut states, config.threads, |st| {
            st.ingest(dataset.column(st.attr), &delta);
            st.update_bounds(n as u64, p_prime);
        });

        // Order candidates by lower bound; the answer is the top-k lowers.
        let mut by_lower: Vec<usize> = (0..states.len()).collect();
        by_lower.sort_by(|&a, &b| {
            states[b]
                .bounds
                .lower
                .partial_cmp(&states[a].bounds.lower)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let kth_lower = states[by_lower[k - 1]].bounds.lower;

        // Exact stopping rule: the k-th largest lower bound must dominate
        // every upper bound outside the chosen k.
        let max_outside_upper =
            by_lower[k..].iter().map(|&i| states[i].bounds.upper).fold(f64::NEG_INFINITY, f64::max);
        let separated = by_lower.len() == k || kth_lower >= max_outside_upper;

        if separated || m >= n {
            stats.converged_early = separated && m < n;
            by_lower.truncate(k);
            let top = by_lower
                .iter()
                .map(|&i| score_of(dataset, states[i].attr, &states[i].bounds))
                .collect();
            return Ok(TopKResult { top, stats });
        }

        // Prune candidates whose upper bound cannot reach the k-th lower.
        states.retain(|st| st.bounds.upper >= kth_lower);

        m_target = (m * 2).min(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_entropy_top_k;
    use swope_columnar::{Column, Field, Schema};

    fn cyclic_dataset(n: usize, supports: &[u32]) -> Dataset {
        let fields =
            supports.iter().enumerate().map(|(i, &u)| Field::new(format!("c{i}"), u)).collect();
        let columns = supports
            .iter()
            .map(|&u| Column::new((0..n).map(|r| r as u32 % u).collect(), u).unwrap())
            .collect();
        Dataset::new(Schema::new(fields), columns).unwrap()
    }

    #[test]
    fn matches_exact_answer() {
        let ds = cyclic_dataset(30_000, &[2, 64, 4, 256, 16]);
        let rank = entropy_rank_top_k(&ds, 3, &SwopeConfig::default()).unwrap();
        let exact = exact_entropy_top_k(&ds, 3).unwrap();
        assert_eq!(rank.attr_indices(), exact.attr_indices());
    }

    #[test]
    fn converges_early_when_gap_is_large() {
        let ds = cyclic_dataset(200_000, &[2, 256, 4]);
        let r = entropy_rank_top_k(&ds, 1, &SwopeConfig::default()).unwrap();
        assert!(r.stats.converged_early, "{:?}", r.stats);
    }

    #[test]
    fn needs_more_samples_than_swope_when_gap_is_small() {
        // Two near-tied attributes below the top one: SWOPE can stop early,
        // EntropyRank must separate them.
        let n = 100_000;
        let schema =
            Schema::new(vec![Field::new("a", 64), Field::new("b", 64), Field::new("c", 63)]);
        let cols = vec![
            Column::new((0..n).map(|r| r as u32 % 64).collect(), 64).unwrap(),
            Column::new((0..n).map(|r| (r as u32).wrapping_mul(2654435761) >> 26).collect(), 64)
                .unwrap(),
            Column::new((0..n).map(|r| r as u32 % 63).collect(), 63).unwrap(),
        ];
        let ds = Dataset::new(schema, cols).unwrap();
        let cfg = SwopeConfig::default();
        let rank = entropy_rank_top_k(&ds, 2, &cfg).unwrap();
        let swope = swope_core::entropy_top_k(&ds, 2, &cfg).unwrap();
        assert!(
            rank.stats.rows_scanned >= swope.stats.rows_scanned,
            "rank {:?} vs swope {:?}",
            rank.stats,
            swope.stats
        );
    }

    #[test]
    fn k_equals_h_short_circuits() {
        let ds = cyclic_dataset(10_000, &[2, 8]);
        let r = entropy_rank_top_k(&ds, 2, &SwopeConfig::default()).unwrap();
        assert_eq!(r.top.len(), 2);
        // With all attributes in the answer, separation is immediate.
        assert_eq!(r.stats.iterations, 1);
    }

    #[test]
    fn validation() {
        let ds = cyclic_dataset(100, &[2, 4]);
        assert!(entropy_rank_top_k(&ds, 0, &SwopeConfig::default()).is_err());
        assert!(entropy_rank_top_k(&ds, 3, &SwopeConfig::default()).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = cyclic_dataset(30_000, &[2, 64, 4, 16]);
        let c = SwopeConfig::default().with_seed(8);
        assert_eq!(
            entropy_rank_top_k(&ds, 2, &c).unwrap(),
            entropy_rank_top_k(&ds, 2, &c).unwrap()
        );
    }
}
