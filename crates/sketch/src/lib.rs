//! # swope-sketch
//!
//! Per-page partition count sketches for the SWOPE storage layer.
//!
//! A [`ColumnSketch`] stores, for every 64Ki-row page of a packed column,
//! the **exact** histogram of that page's codes. The per-page unit matches
//! the SWOP v2 on-disk page (`swope_store::page::PAGE_ROWS`), so a sketch
//! built at ingest time can be serialized next to the column pages and
//! reloaded without touching row data.
//!
//! Scoped queries use the sketches two ways:
//!
//! * **Range scopes** — a row range `[a, b)` decomposes into fully covered
//!   pages plus at most two partial *fringe* pages. Covered pages are
//!   answered exactly by summing their histograms; only the fringe ever
//!   needs a physical row scan (`swope_core`'s hybrid scoped sampler).
//! * **Predicate scopes** — `WHERE col = code` materialization skips every
//!   page whose histogram holds a zero count for `code` (page pruning).
//!
//! Two physical layouts keep the sketch small: columns whose support fits
//! a `u8` (`support ≤ 256`) store a **compact** dense count array per
//! page; wider supports store a **sparse** sorted `(code, count)` list, so
//! a page never costs more than `min(support, PAGE_ROWS)` entries.
//!
//! The on-disk encoding (see [`DatasetSketch::encode`]) carries its own
//! trailing CRC32 and validates every length field before allocating, so
//! a truncated or corrupted sketch section fails with a one-line
//! [`StoreError::Corrupt`] instead of a panic.

#![deny(missing_docs)]
#![warn(clippy::all)]

use swope_store::crc32::crc32;
use swope_store::page::PAGE_ROWS;
use swope_store::{for_packed, CodeRepr, PackedColumn, StoreError};

/// Magic bytes opening an encoded [`DatasetSketch`].
pub const SKETCH_MAGIC: [u8; 4] = *b"SKCH";

/// Current sketch encoding version.
pub const SKETCH_VERSION: u16 = 1;

/// Histogram layout of one column's sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SketchKind {
    /// Dense per-page count arrays (`support` entries per page). Chosen
    /// for `u8`-packed columns (`support ≤ 256`).
    Compact,
    /// Sparse sorted `(code, count)` lists per page. Chosen above 256.
    Sparse,
}

impl SketchKind {
    /// Stable on-disk tag.
    fn tag(self) -> u8 {
        match self {
            SketchKind::Compact => 0,
            SketchKind::Sparse => 1,
        }
    }

    /// Human-readable name (used by `swope inspect`).
    pub fn name(self) -> &'static str {
        match self {
            SketchKind::Compact => "compact",
            SketchKind::Sparse => "sparse",
        }
    }
}

/// Exact code histogram of one page.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PageHistogram {
    /// `counts[code]`, length = support.
    Dense(Vec<u32>),
    /// Sorted by code; zero counts omitted.
    Sparse(Vec<(u32, u32)>),
}

impl PageHistogram {
    fn count(&self, code: u32) -> u64 {
        match self {
            PageHistogram::Dense(c) => c.get(code as usize).copied().unwrap_or(0) as u64,
            PageHistogram::Sparse(entries) => entries
                .binary_search_by_key(&code, |&(c, _)| c)
                .map(|i| entries[i].1 as u64)
                .unwrap_or(0),
        }
    }

    /// Adds this page's counts into `acc` (length = support).
    fn accumulate(&self, acc: &mut [u64]) {
        match self {
            PageHistogram::Dense(c) => {
                for (a, &v) in acc.iter_mut().zip(c) {
                    *a += v as u64;
                }
            }
            PageHistogram::Sparse(entries) => {
                for &(code, v) in entries {
                    acc[code as usize] += v as u64;
                }
            }
        }
    }

    fn rows(&self) -> u64 {
        match self {
            PageHistogram::Dense(c) => c.iter().map(|&v| v as u64).sum(),
            PageHistogram::Sparse(entries) => entries.iter().map(|&(_, v)| v as u64).sum(),
        }
    }

    fn distinct(&self) -> usize {
        match self {
            PageHistogram::Dense(c) => c.iter().filter(|&&v| v > 0).count(),
            PageHistogram::Sparse(entries) => entries.len(),
        }
    }
}

/// Per-page exact code histograms for one packed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSketch {
    support: u32,
    kind: SketchKind,
    pages: Vec<PageHistogram>,
}

impl ColumnSketch {
    /// Builds the sketch from a packed column: one exact histogram per
    /// [`PAGE_ROWS`]-row page. Width-generic — the result depends only on
    /// the logical codes, not the storage width.
    pub fn build(column: &PackedColumn) -> Self {
        let support = column.support();
        let kind = if support <= 256 { SketchKind::Compact } else { SketchKind::Sparse };
        let pages = for_packed!(column.codes(), |codes| build_pages(codes, support, kind));
        Self { support, kind, pages }
    }

    /// Builds the sketch from already-paged codes: one histogram per
    /// yielded page, which must be the column's [`PAGE_ROWS`]-row pages
    /// in order (every page full except possibly the last). This is the
    /// out-of-core path — the pager hands pages over one at a time, so
    /// the build never needs the whole column resident.
    pub fn build_from_pages<'a>(
        support: u32,
        pages: impl IntoIterator<Item = &'a swope_store::PackedCodes>,
    ) -> Self {
        let mut b = ColumnSketchBuilder::new(support);
        for page in pages {
            b.push_page(page);
        }
        b.finish()
    }

    /// The column's support size.
    pub fn support(&self) -> u32 {
        self.support
    }

    /// The histogram layout in use.
    pub fn kind(&self) -> SketchKind {
        self.kind
    }

    /// Number of pages sketched.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Exact count of `code` within page `page` (0 for out-of-range).
    pub fn page_count(&self, page: usize, code: u32) -> u64 {
        self.pages.get(page).map_or(0, |p| p.count(code))
    }

    /// Number of distinct codes occurring in page `page` (0 for
    /// out-of-range) — exact, straight from the page histogram.
    pub fn page_distinct(&self, page: usize) -> usize {
        self.pages.get(page).map_or(0, |p| p.distinct())
    }

    /// The pager's eviction-time encoding pick for every page of a
    /// column stored at `width`: the sketch histogram already knows each
    /// page's distinct-code count and row count, so the RLE-vs-palette
    /// decision costs nothing at fault or eviction time.
    pub fn encoding_picks(&self, width: swope_store::Width) -> Vec<swope_store::rle::PageEncoding> {
        self.pages
            .iter()
            .map(|p| swope_store::rle::pick_encoding(p.distinct(), p.rows() as usize, width))
            .collect()
    }

    /// Exact per-code counts summed over the page range `pages`
    /// (returned vector has `support` entries).
    pub fn range_counts(&self, pages: std::ops::Range<usize>) -> Vec<u64> {
        let mut acc = vec![0u64; self.support as usize];
        for p in pages {
            if let Some(h) = self.pages.get(p) {
                h.accumulate(&mut acc);
            }
        }
        acc
    }
}

fn build_pages<R: CodeRepr>(codes: &[R], support: u32, kind: SketchKind) -> Vec<PageHistogram> {
    let mut pages = Vec::with_capacity(codes.len().div_ceil(PAGE_ROWS));
    let mut counts = vec![0u32; support as usize];
    for chunk in codes.chunks(PAGE_ROWS) {
        for c in counts.iter_mut() {
            *c = 0;
        }
        for &c in chunk {
            counts[c.widen() as usize] += 1;
        }
        pages.push(match kind {
            SketchKind::Compact => PageHistogram::Dense(counts.clone()),
            SketchKind::Sparse => PageHistogram::Sparse(
                counts
                    .iter()
                    .enumerate()
                    .filter(|&(_, &v)| v > 0)
                    .map(|(code, &v)| (code as u32, v))
                    .collect(),
            ),
        });
    }
    pages
}

/// Incremental [`ColumnSketch`] construction, one page at a time.
///
/// The out-of-core sketch rebuild drives this from the pager so only
/// one page needs to be resident while sketching; [`ColumnSketch::build_from_pages`]
/// is a convenience wrapper over it.
#[derive(Debug)]
pub struct ColumnSketchBuilder {
    support: u32,
    kind: SketchKind,
    counts: Vec<u32>,
    pages: Vec<PageHistogram>,
}

impl ColumnSketchBuilder {
    /// Starts a sketch for a column with the given support.
    pub fn new(support: u32) -> Self {
        let kind = if support <= 256 { SketchKind::Compact } else { SketchKind::Sparse };
        Self { support, kind, counts: vec![0u32; support as usize], pages: Vec::new() }
    }

    /// Appends the histogram for the next page. Pages must arrive in
    /// order and be [`PAGE_ROWS`] rows each except possibly the last.
    pub fn push_page(&mut self, page: &swope_store::PackedCodes) {
        for c in self.counts.iter_mut() {
            *c = 0;
        }
        for_packed!(page, |codes| {
            for &c in codes.iter() {
                self.counts[c.widen() as usize] += 1;
            }
        });
        self.pages.push(match self.kind {
            SketchKind::Compact => PageHistogram::Dense(self.counts.clone()),
            SketchKind::Sparse => PageHistogram::Sparse(
                self.counts
                    .iter()
                    .enumerate()
                    .filter(|&(_, &v)| v > 0)
                    .map(|(code, &v)| (code as u32, v))
                    .collect(),
            ),
        });
    }

    /// Finishes the sketch.
    pub fn finish(self) -> ColumnSketch {
        ColumnSketch { support: self.support, kind: self.kind, pages: self.pages }
    }
}

/// Per-page count sketches for every column of a dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetSketch {
    num_rows: usize,
    columns: Vec<ColumnSketch>,
}

impl DatasetSketch {
    /// Assembles a dataset sketch from per-column sketches.
    ///
    /// `num_rows` is the dataset's row count; all columns must sketch the
    /// same number of pages (`ceil(num_rows / PAGE_ROWS)`).
    pub fn new(num_rows: usize, columns: Vec<ColumnSketch>) -> Self {
        debug_assert!(columns.iter().all(|c| c.num_pages() == num_rows.div_ceil(PAGE_ROWS)));
        Self { num_rows, columns }
    }

    /// Builds sketches for an iterator of packed columns.
    pub fn build<'a>(num_rows: usize, columns: impl IntoIterator<Item = &'a PackedColumn>) -> Self {
        Self::new(num_rows, columns.into_iter().map(ColumnSketch::build).collect())
    }

    /// Number of rows the sketch covers.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of pages per column.
    pub fn num_pages(&self) -> usize {
        self.num_rows.div_ceil(PAGE_ROWS)
    }

    /// Number of sketched columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The sketch for column `attr`, if in range.
    pub fn column(&self, attr: usize) -> Option<&ColumnSketch> {
        self.columns.get(attr)
    }

    /// Encoded size in bytes (what [`DatasetSketch::encode`] will emit).
    pub fn encoded_len(&self) -> usize {
        let mut len = 4 + 2 + 2 + 4 + 8 + 4; // header
        for col in &self.columns {
            len += 4 + 1 + 4; // support, kind, page_count
            for page in &col.pages {
                len += match page {
                    PageHistogram::Dense(c) => c.len() * 4,
                    PageHistogram::Sparse(e) => 4 + e.len() * 8,
                };
            }
        }
        len + 4 // trailing CRC
    }

    /// Serializes the sketch: header, per-column pages, trailing CRC32
    /// over everything before it.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&SKETCH_MAGIC);
        out.extend_from_slice(&SKETCH_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // flags
        out.extend_from_slice(&(PAGE_ROWS as u32).to_le_bytes());
        out.extend_from_slice(&(self.num_rows as u64).to_le_bytes());
        out.extend_from_slice(&(self.columns.len() as u32).to_le_bytes());
        for col in &self.columns {
            out.extend_from_slice(&col.support.to_le_bytes());
            out.push(col.kind.tag());
            out.extend_from_slice(&(col.pages.len() as u32).to_le_bytes());
            for page in &col.pages {
                match page {
                    PageHistogram::Dense(counts) => {
                        for &c in counts {
                            out.extend_from_slice(&c.to_le_bytes());
                        }
                    }
                    PageHistogram::Sparse(entries) => {
                        out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                        for &(code, count) in entries {
                            out.extend_from_slice(&code.to_le_bytes());
                            out.extend_from_slice(&count.to_le_bytes());
                        }
                    }
                }
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes an encoded sketch, validating the CRC and every length
    /// field before trusting (or allocating for) any content.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        let corrupt = |msg: &str| StoreError::Corrupt(format!("sketch: {msg}"));
        if bytes.len() < 24 + 4 {
            return Err(corrupt("truncated header"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(body) != stored {
            return Err(corrupt("CRC mismatch"));
        }
        let mut r = Reader { buf: body, pos: 0 };
        if r.take(4)? != SKETCH_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = r.u16()?;
        if version != SKETCH_VERSION {
            return Err(corrupt(&format!("unsupported version {version}")));
        }
        let _flags = r.u16()?;
        let page_rows = r.u32()? as usize;
        if page_rows != PAGE_ROWS {
            return Err(corrupt(&format!("page_rows {page_rows} != {PAGE_ROWS}")));
        }
        let num_rows = r.u64()? as usize;
        let column_count = r.u32()? as usize;
        let expect_pages = num_rows.div_ceil(PAGE_ROWS);
        let mut columns = Vec::with_capacity(column_count.min(r.remaining()));
        for _ in 0..column_count {
            let support = r.u32()?;
            let tag = r.u8()?;
            let page_count = r.u32()? as usize;
            if page_count != expect_pages {
                return Err(corrupt(&format!(
                    "column has {page_count} pages, expected {expect_pages}"
                )));
            }
            let kind = match tag {
                0 => SketchKind::Compact,
                1 => SketchKind::Sparse,
                t => return Err(corrupt(&format!("unknown sketch kind {t}"))),
            };
            if kind == SketchKind::Compact && support > 256 {
                return Err(corrupt("compact sketch with support > 256"));
            }
            let mut pages = Vec::with_capacity(page_count);
            let mut remaining_rows = num_rows as u64;
            for _ in 0..page_count {
                let page_rows_here = remaining_rows.min(PAGE_ROWS as u64);
                remaining_rows -= page_rows_here;
                let hist = match kind {
                    SketchKind::Compact => {
                        let raw = r.take(support as usize * 4)?;
                        let counts: Vec<u32> = raw
                            .chunks_exact(4)
                            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
                            .collect();
                        PageHistogram::Dense(counts)
                    }
                    SketchKind::Sparse => {
                        let entry_count = r.u32()? as usize;
                        if entry_count > r.remaining() / 8 {
                            return Err(corrupt("sparse entry count exceeds payload"));
                        }
                        let mut entries = Vec::with_capacity(entry_count);
                        let mut last: Option<u32> = None;
                        for _ in 0..entry_count {
                            let code = r.u32()?;
                            let count = r.u32()?;
                            if code >= support {
                                return Err(corrupt("sparse code out of support"));
                            }
                            if last.is_some_and(|l| code <= l) {
                                return Err(corrupt("sparse codes not strictly ascending"));
                            }
                            last = Some(code);
                            entries.push((code, count));
                        }
                        PageHistogram::Sparse(entries)
                    }
                };
                if hist.rows() != page_rows_here {
                    return Err(corrupt("page histogram row total mismatch"));
                }
                pages.push(hist);
            }
            columns.push(ColumnSketch { support, kind, pages });
        }
        if r.pos != r.buf.len() {
            return Err(corrupt("trailing bytes after sketch payload"));
        }
        Ok(Self { num_rows, columns })
    }
}

/// Little bounds-checked byte cursor used by [`DatasetSketch::decode`].
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Corrupt("sketch: truncated payload".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swope_store::Width;

    fn packed(codes: Vec<u32>, support: u32) -> PackedColumn {
        PackedColumn::new(codes, support).unwrap()
    }

    #[test]
    fn kind_follows_support() {
        let small = ColumnSketch::build(&packed(vec![0, 1, 2], 3));
        assert_eq!(small.kind(), SketchKind::Compact);
        let wide = ColumnSketch::build(&packed(vec![0, 300], 500));
        assert_eq!(wide.kind(), SketchKind::Sparse);
    }

    #[test]
    fn page_counts_are_exact() {
        // Two full pages plus a partial third.
        let n = 2 * PAGE_ROWS + 100;
        let codes: Vec<u32> = (0..n as u32).map(|i| i % 5).collect();
        let sk = ColumnSketch::build(&packed(codes.clone(), 5));
        assert_eq!(sk.num_pages(), 3);
        for page in 0..3 {
            let lo = page * PAGE_ROWS;
            let hi = ((page + 1) * PAGE_ROWS).min(n);
            for code in 0..5u32 {
                let expect = codes[lo..hi].iter().filter(|&&c| c == code).count() as u64;
                assert_eq!(sk.page_count(page, code), expect, "page {page} code {code}");
            }
        }
        // Range sums.
        let all = sk.range_counts(0..3);
        for code in 0..5u32 {
            let expect = codes.iter().filter(|&&c| c == code).count() as u64;
            assert_eq!(all[code as usize], expect);
        }
    }

    #[test]
    fn build_from_pages_matches_whole_column_build() {
        use swope_store::PackedCodes;
        let n = 2 * PAGE_ROWS + 321;
        let codes: Vec<u32> = (0..n as u32).map(|i| (i * 17) % 900).collect();
        let whole = ColumnSketch::build(&packed(codes.clone(), 900));
        let pages: Vec<PackedCodes> =
            codes.chunks(PAGE_ROWS).map(|chunk| PackedCodes::pack(chunk, Width::U16)).collect();
        let paged = ColumnSketch::build_from_pages(900, pages.iter());
        assert_eq!(paged, whole);
    }

    #[test]
    fn encoding_picks_follow_page_shape() {
        use swope_store::rle::PageEncoding;
        // Page 0 constant, page 1 low-distinct, partial page 2 diverse.
        let n = 2 * PAGE_ROWS + 100;
        let codes: Vec<u32> = (0..n)
            .map(|i| match i / PAGE_ROWS {
                0 => 7u32,
                1 => (i % 4) as u32 + 40_000,
                _ => (i % 70_000) as u32,
            })
            .collect();
        let sk = ColumnSketch::build(&packed(codes, 70_000));
        let picks = sk.encoding_picks(Width::U32);
        assert_eq!(picks.len(), 3);
        assert_eq!(picks[0], PageEncoding::Rle);
        assert_eq!(picks[1], PageEncoding::Palette);
        assert_eq!(picks[2], PageEncoding::Plain);
        assert_eq!(sk.page_distinct(0), 1);
        assert_eq!(sk.page_distinct(1), 4);
        assert_eq!(sk.page_distinct(99), 0);
    }

    #[test]
    fn sketch_is_width_invariant() {
        let codes: Vec<u32> = (0..1000u32).map(|i| (i * 31) % 200).collect();
        let base = packed(codes, 200);
        let a = ColumnSketch::build(&base);
        for w in [Width::U16, Width::U32] {
            let b = ColumnSketch::build(&base.repacked(w).unwrap());
            assert_eq!(a, b, "width {w}");
        }
    }

    #[test]
    fn roundtrip_mixed_kinds() {
        let n = PAGE_ROWS + 77;
        let c0: Vec<u32> = (0..n as u32).map(|i| i % 7).collect();
        let c1: Vec<u32> = (0..n as u32).map(|i| (i * 13) % 1000).collect();
        let cols = [packed(c0, 7), packed(c1, 1000)];
        let sk = DatasetSketch::build(n, cols.iter());
        assert_eq!(sk.column(0).unwrap().kind(), SketchKind::Compact);
        assert_eq!(sk.column(1).unwrap().kind(), SketchKind::Sparse);
        let bytes = sk.encode();
        assert_eq!(bytes.len(), sk.encoded_len());
        let back = DatasetSketch::decode(&bytes).unwrap();
        assert_eq!(sk, back);
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let sk = DatasetSketch::build(0, std::iter::empty());
        let back = DatasetSketch::decode(&sk.encode()).unwrap();
        assert_eq!(back.num_rows(), 0);
        assert_eq!(back.num_pages(), 0);
    }

    #[test]
    fn truncation_at_every_prefix_errors_cleanly() {
        let codes: Vec<u32> = (0..300u32).map(|i| i % 9).collect();
        let sk = DatasetSketch::build(300, [packed(codes, 9)].iter());
        let bytes = sk.encode();
        for len in 0..bytes.len() {
            let r = DatasetSketch::decode(&bytes[..len]);
            assert!(r.is_err(), "truncation to {len} bytes must fail");
        }
    }

    #[test]
    fn single_byte_corruption_never_decodes_silently() {
        let codes: Vec<u32> = (0..500u32).map(|i| (i * 3) % 400).collect();
        let sk = DatasetSketch::build(500, [packed(codes, 400)].iter());
        let bytes = sk.encode();
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0xFF;
            // Either a clean error or (never) the original — a flipped byte
            // must not produce a silently different sketch.
            if let Ok(decoded) = DatasetSketch::decode(&bad) {
                assert_eq!(decoded, sk, "byte {pos}");
            }
        }
    }

    #[test]
    fn crc_guards_payload() {
        let sk = DatasetSketch::build(10, [packed(vec![0; 10], 2)].iter());
        let mut bytes = sk.encode();
        let last = bytes.len() - 5;
        bytes[last] ^= 1;
        let err = DatasetSketch::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("CRC"), "{err}");
    }
}
