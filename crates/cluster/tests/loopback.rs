//! Wire-level integration over real loopback TCP: a coordinator driving
//! peer shard servers must answer every query shape byte-for-byte like
//! the direct library call on the union dataset, scoped queries must
//! route only to intersecting peers, and dead or hung peers must turn
//! into one-line transport errors within the configured timeout.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use swope_cluster::coordinator::{probe, PeerPool, PeerTimeouts, RemoteShardSource};
use swope_cluster::frame::{read_frame, write_frame, Frame, Hello, PROTOCOL_VERSION};
use swope_cluster::peer::serve_connection;
use swope_cluster::stats::ClusterStats;
use swope_columnar::Dataset;
use swope_core::{
    entropy_filter, entropy_filter_transport, entropy_profile, entropy_profile_transport,
    entropy_top_k, entropy_top_k_transport, mi_filter, mi_filter_transport, mi_profile,
    mi_profile_transport, mi_top_k, mi_top_k_transport, Executor, NoopObserver, SamplingStrategy,
    ShardTransport, SwopeConfig, SwopeError,
};

const PROFILE_FLOOR: f64 = 0.05;

fn union_dataset() -> Dataset {
    swope_datagen::generate(&swope_datagen::corpus::tiny(4_000, 6), 0xC1057E4)
}

fn slice_rows(ds: &Dataset, range: std::ops::Range<usize>) -> Dataset {
    let rows: Vec<usize> = range.collect();
    ds.take_rows(&rows)
}

/// Spawns a peer serving `ds` on a fresh loopback port, one session
/// thread per connection. The listener thread leaks (it blocks in
/// accept) — harmless for a test process.
fn spawn_peer(ds: Dataset) -> String {
    let ds = Arc::new(ds);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            let ds = Arc::clone(&ds);
            std::thread::spawn(move || {
                let stats = ClusterStats::new();
                let resolve =
                    move |name: &str| (name.is_empty() || name == "t").then(|| Arc::clone(&ds));
                serve_connection(&mut stream, &resolve, &stats);
            });
        }
    });
    addr
}

fn cfg(seed: u64) -> SwopeConfig {
    SwopeConfig::with_epsilon(0.15).with_seed(seed)
}

fn seed_of(config: &SwopeConfig) -> u64 {
    match config.sampling {
        SamplingStrategy::Row { seed } => seed,
        _ => panic!("row sampling expected"),
    }
}

fn connect(
    addrs: &[String],
    config: &SwopeConfig,
    scope: Option<std::ops::Range<u64>>,
) -> RemoteShardSource {
    RemoteShardSource::connect(
        addrs,
        "t",
        seed_of(config),
        scope,
        &PeerTimeouts::default(),
        Arc::new(ClusterStats::new()),
        None,
    )
    .unwrap()
}

/// Every query shape, over 1, 2, and 3 peers holding uneven slices of
/// the union: the coordinator's answer must equal the direct library
/// call on the union dataset — including stats, so `assert_eq!` on the
/// whole result checks every byte that would be serialized.
#[test]
fn wire_answers_match_direct_library_calls() {
    let union = union_dataset();
    let n = union.num_rows();
    let splits: Vec<Vec<Dataset>> = vec![
        vec![slice_rows(&union, 0..n)],
        vec![slice_rows(&union, 0..n / 3), slice_rows(&union, n / 3..n)],
        vec![
            slice_rows(&union, 0..n / 4),
            slice_rows(&union, n / 4..n / 2),
            slice_rows(&union, n / 2..n),
        ],
    ];
    let exec = Executor::sequential();
    for slices in splits {
        let peers = slices.len();
        let addrs: Vec<String> = slices.into_iter().map(spawn_peer).collect();
        let config = cfg(0x5EED);

        let direct = entropy_top_k(&union, 3, &config).unwrap();
        let mut src = connect(&addrs, &config, None);
        assert_eq!(src.num_shards(), peers);
        let wire = entropy_top_k_transport(&mut src, 3, &config, &mut NoopObserver, &exec).unwrap();
        assert_eq!(wire, direct, "entropy_top_k over {peers} peer(s)");
        drop(src);

        let direct = entropy_filter(&union, 1.5, &config).unwrap();
        let mut src = connect(&addrs, &config, None);
        let wire =
            entropy_filter_transport(&mut src, 1.5, &config, &mut NoopObserver, &exec).unwrap();
        assert_eq!(wire, direct, "entropy_filter over {peers} peer(s)");
        drop(src);

        let direct = entropy_profile(&union, PROFILE_FLOOR, &config).unwrap();
        let mut src = connect(&addrs, &config, None);
        let wire =
            entropy_profile_transport(&mut src, PROFILE_FLOOR, &config, &mut NoopObserver, &exec)
                .unwrap();
        assert_eq!(wire, direct, "entropy_profile over {peers} peer(s)");
        drop(src);

        let direct = mi_top_k(&union, 0, 2, &config).unwrap();
        let mut src = connect(&addrs, &config, None);
        let wire = mi_top_k_transport(&mut src, 0, 2, &config, &mut NoopObserver, &exec).unwrap();
        assert_eq!(wire, direct, "mi_top_k over {peers} peer(s)");
        drop(src);

        let direct = mi_filter(&union, 0, 0.01, &config).unwrap();
        let mut src = connect(&addrs, &config, None);
        let wire =
            mi_filter_transport(&mut src, 0, 0.01, &config, &mut NoopObserver, &exec).unwrap();
        assert_eq!(wire, direct, "mi_filter over {peers} peer(s)");
        drop(src);

        let direct = mi_profile(&union, 0, PROFILE_FLOOR, &config).unwrap();
        let mut src = connect(&addrs, &config, None);
        let wire =
            mi_profile_transport(&mut src, 0, PROFILE_FLOOR, &config, &mut NoopObserver, &exec)
                .unwrap();
        assert_eq!(wire, direct, "mi_profile over {peers} peer(s)");
    }
}

/// A row-range scope over the wire equals the direct call on the
/// physically sliced union (the cluster path samples the scoped
/// population directly, like the core's sketchless physical path), and
/// non-intersecting peers are never involved.
#[test]
fn scoped_queries_route_to_intersecting_peers_only() {
    let union = union_dataset();
    let n = union.num_rows();
    let addrs =
        vec![spawn_peer(slice_rows(&union, 0..n / 2)), spawn_peer(slice_rows(&union, n / 2..n))];
    let config = cfg(0xA5C0);
    let exec = Executor::sequential();

    // Scope spanning both peers.
    let (a, b) = (n / 4, 3 * n / 4);
    let scoped_ds = slice_rows(&union, a..b);
    let direct = entropy_top_k(&scoped_ds, 3, &config).unwrap();
    let mut src = connect(&addrs, &config, Some(a as u64..b as u64));
    assert_eq!(src.peer_count(), 2);
    let wire = entropy_top_k_transport(&mut src, 3, &config, &mut NoopObserver, &exec).unwrap();
    assert_eq!(wire, direct);
    drop(src);

    // Scope entirely inside the second peer: the first is not consulted.
    let (a, b) = (n / 2 + 10, n - 5);
    let scoped_ds = slice_rows(&union, a..b);
    let direct = mi_top_k(&scoped_ds, 1, 2, &config).unwrap();
    let mut src = connect(&addrs, &config, Some(a as u64..b as u64));
    assert_eq!(src.peer_count(), 1);
    let wire = mi_top_k_transport(&mut src, 1, 2, &config, &mut NoopObserver, &exec).unwrap();
    assert_eq!(wire, direct);
    drop(src);

    // The scope end clamps to the union (the single-box rule), so a
    // range starting past the union is empty and rejected up front.
    let err = RemoteShardSource::connect(
        &addrs,
        "t",
        1,
        Some((n as u64)..(n as u64) + 10),
        &PeerTimeouts::default(),
        Arc::new(ClusterStats::new()),
        None,
    )
    .unwrap_err();
    assert!(matches!(err, SwopeError::InvalidScope(_)), "{err}");
}

/// Sequential queries through a [`PeerPool`] reuse the same peer
/// sessions: the first round dials every peer, later rounds re-handshake
/// over the pooled sockets — counted by `conn_reuses` — and the answers
/// stay byte-identical to the direct library call.
#[test]
fn pooled_sessions_are_reused_across_queries() {
    let union = union_dataset();
    let n = union.num_rows();
    let addrs =
        vec![spawn_peer(slice_rows(&union, 0..n / 2)), spawn_peer(slice_rows(&union, n / 2..n))];
    let config = cfg(0x9001);
    let exec = Executor::sequential();
    let stats = Arc::new(ClusterStats::new());
    let pool = Arc::new(PeerPool::new(2));
    let direct = entropy_top_k(&union, 3, &config).unwrap();
    for round in 0..3 {
        let mut src = RemoteShardSource::connect(
            &addrs,
            "t",
            seed_of(&config),
            None,
            &PeerTimeouts::default(),
            Arc::clone(&stats),
            Some(Arc::clone(&pool)),
        )
        .unwrap();
        let wire = entropy_top_k_transport(&mut src, 3, &config, &mut NoopObserver, &exec).unwrap();
        assert_eq!(wire, direct, "round {round}");
        src.finish();
    }
    assert_eq!(pool.idle_count(), 2, "both sessions parked after the last query");
    let snap = stats.snapshot();
    assert_eq!(snap.conns_opened, 2, "only the first round dialed");
    assert_eq!(snap.conn_reuses, 4, "rounds 2 and 3 reused both sessions");
    assert_eq!(snap.peer_errors, 0);
}

/// A pooled socket whose peer went away is detected by the `Hello`
/// health check and replaced by one fresh dial — no peer error, and the
/// query still answers correctly.
#[test]
fn stale_pooled_socket_redials_transparently() {
    let union = union_dataset();
    let addr = spawn_peer(slice_rows(&union, 0..union.num_rows()));
    let pool = Arc::new(PeerPool::new(2));
    // Manufacture a stale idle session: a socket whose remote end is gone.
    let dead = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = std::net::TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let (server_side, _) = l.accept().unwrap();
        drop(server_side);
        client
    };
    pool.check_in(&addr, dead);
    assert_eq!(pool.idle_count(), 1);
    let config = cfg(0x57A1E);
    let stats = Arc::new(ClusterStats::new());
    let mut src = RemoteShardSource::connect(
        std::slice::from_ref(&addr),
        "t",
        seed_of(&config),
        None,
        &PeerTimeouts::default(),
        Arc::clone(&stats),
        Some(Arc::clone(&pool)),
    )
    .unwrap();
    let direct = entropy_top_k(&union, 3, &config).unwrap();
    let wire =
        entropy_top_k_transport(&mut src, 3, &config, &mut NoopObserver, &Executor::sequential())
            .unwrap();
    assert_eq!(wire, direct);
    src.finish();
    let snap = stats.snapshot();
    assert_eq!(snap.conns_opened, 1, "the stale socket forced one fresh dial");
    assert_eq!(snap.conn_reuses, 0);
    assert_eq!(snap.peer_errors, 0, "staleness is not a peer error");
    assert_eq!(pool.idle_count(), 1, "the replacement session was pooled");
}

#[test]
fn probe_sums_the_fleet() {
    let union = union_dataset();
    let n = union.num_rows();
    let addrs =
        vec![spawn_peer(slice_rows(&union, 0..n / 2)), spawn_peer(slice_rows(&union, n / 2..n))];
    let stats = ClusterStats::new();
    let p = probe(&addrs, &PeerTimeouts::default(), &stats).unwrap();
    assert_eq!(p.peers, 2);
    assert_eq!(p.union_rows, n as u64);
    assert!(stats.snapshot().frames_sent >= 2);
}

/// An unreachable peer fails fast with a one-line, addr-tagged error.
#[test]
fn dead_peer_is_a_one_line_error() {
    // Bind-then-drop guarantees nothing listens on the port.
    let addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let timeouts =
        PeerTimeouts { connect: Duration::from_millis(300), io: Duration::from_millis(300) };
    let start = Instant::now();
    let err = RemoteShardSource::connect(
        std::slice::from_ref(&addr),
        "t",
        1,
        None,
        &timeouts,
        Arc::new(ClusterStats::new()),
        None,
    )
    .unwrap_err();
    assert!(start.elapsed() < Duration::from_secs(5), "dead peer hung the coordinator");
    let SwopeError::Transport(msg) = err else { panic!("expected a transport error, got {err}") };
    assert!(msg.contains(&addr), "error does not name the peer: {msg}");
    assert!(!msg.contains('\n'), "error is not one line: {msg}");
}

/// A peer that accepts but never answers trips the I/O timeout instead
/// of hanging the query.
#[test]
fn hung_peer_trips_the_io_timeout() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    // Accept and hold the connection open without ever replying.
    let hold = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        std::thread::sleep(Duration::from_secs(10));
        drop(stream);
    });
    let timeouts = PeerTimeouts { connect: Duration::from_secs(1), io: Duration::from_millis(250) };
    let start = Instant::now();
    let err = RemoteShardSource::connect(
        &[addr],
        "t",
        1,
        None,
        &timeouts,
        Arc::new(ClusterStats::new()),
        None,
    )
    .unwrap_err();
    let elapsed = start.elapsed();
    assert!(elapsed < Duration::from_secs(5), "hung peer stalled the coordinator: {elapsed:?}");
    assert!(matches!(err, SwopeError::Transport(_)), "{err}");
    drop(hold); // detached; the test does not wait the full 10s
}

/// A peer that dies *mid-query* (after Hello and the first count reply)
/// surfaces as a transport error on the next iteration, not a hang.
#[test]
fn peer_death_mid_query_fails_the_advance() {
    let union = union_dataset();
    let n = union.num_rows() as u64;
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let ds = union;
    // A hand-rolled peer that answers exactly one GrowDelta, then dies.
    std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let stats = ClusterStats::new();
        let resolve =
            |_: &str| Some(Arc::new(ds.take_rows(&(0..ds.num_rows()).collect::<Vec<_>>())));
        // Reuse the real session logic for Hello/QuerySpec/first delta by
        // speaking frames manually.
        let (hello, _) = read_frame(&mut stream).unwrap();
        let Frame::Hello(_) = hello else { panic!("expected Hello") };
        let reply = Hello {
            version: PROTOCOL_VERSION,
            dataset: "t".into(),
            num_rows: n,
            attrs: resolve("")
                .unwrap()
                .schema()
                .fields()
                .iter()
                .map(|f| swope_core::AttrMeta { name: f.name().into(), support: f.support() })
                .collect(),
        };
        write_frame(&mut stream, &Frame::Hello(reply)).unwrap();
        let _ = read_frame(&mut stream).unwrap(); // QuerySpec
        let _ = read_frame(&mut stream).unwrap(); // first GrowDelta
        drop(stream); // die before answering
        let _ = stats;
    });
    let config = cfg(0xDEAD);
    let timeouts = PeerTimeouts { connect: Duration::from_secs(1), io: Duration::from_millis(500) };
    let mut src = RemoteShardSource::connect(
        std::slice::from_ref(&addr),
        "t",
        seed_of(&config),
        None,
        &timeouts,
        Arc::new(ClusterStats::new()),
        None,
    )
    .unwrap();
    let start = Instant::now();
    let err =
        entropy_top_k_transport(&mut src, 3, &config, &mut NoopObserver, &Executor::sequential())
            .unwrap_err();
    assert!(start.elapsed() < Duration::from_secs(5), "mid-query death hung the loop");
    let SwopeError::Transport(msg) = err else { panic!("expected a transport error, got {err}") };
    assert!(msg.contains(&addr), "{msg}");
    assert!(!msg.contains('\n'), "{msg}");
}
