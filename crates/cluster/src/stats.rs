//! Shared cluster counters, exported as `swope_cluster_*` Prometheus
//! families by the server (see `swope_obs::names`).
//!
//! One [`ClusterStats`] instance is shared by every coordinator query
//! and every peer session in a process: relaxed atomic counters, read
//! with [`ClusterStats::snapshot`] at scrape time.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic wire/merge counters for one process.
#[derive(Debug, Default)]
pub struct ClusterStats {
    queries: AtomicU64,
    merges: AtomicU64,
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    peer_errors: AtomicU64,
    conns_opened: AtomicU64,
    conn_reuses: AtomicU64,
}

/// A point-in-time copy of [`ClusterStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterSnapshot {
    /// Cluster queries started (coordinator side).
    pub queries: u64,
    /// Exact count merges performed (one per doubling iteration).
    pub merges: u64,
    /// Protocol frames written to peers.
    pub frames_sent: u64,
    /// Protocol frames read from peers.
    pub frames_received: u64,
    /// Wire bytes written.
    pub bytes_sent: u64,
    /// Wire bytes read.
    pub bytes_received: u64,
    /// Peer connections or frames that failed.
    pub peer_errors: u64,
    /// Fresh TCP connections dialed to peers.
    pub conns_opened: u64,
    /// Pooled peer connections reused for a new query.
    pub conn_reuses: u64,
}

impl ClusterStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one cluster query start.
    pub fn record_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one exact count merge.
    pub fn record_merge(&self) {
        self.merges.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one frame put on the wire.
    pub fn record_sent(&self, bytes: usize) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Counts one frame read off the wire.
    pub fn record_received(&self, bytes: usize) {
        self.frames_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Counts one failed peer interaction.
    pub fn record_peer_error(&self) {
        self.peer_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one fresh TCP connection dialed to a peer.
    pub fn record_conn_opened(&self) {
        self.conns_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one pooled connection reused across queries.
    pub fn record_conn_reuse(&self) {
        self.conn_reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy for metrics scrapes.
    pub fn snapshot(&self) -> ClusterSnapshot {
        ClusterSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            merges: self.merges.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            peer_errors: self.peer_errors.load(Ordering::Relaxed),
            conns_opened: self.conns_opened.load(Ordering::Relaxed),
            conn_reuses: self.conn_reuses.load(Ordering::Relaxed),
        }
    }
}
