//! The coordinator side: a [`ShardTransport`] whose shards are remote
//! peer servers.
//!
//! [`RemoteShardSource::connect`] dials every peer (with an explicit
//! connect timeout), exchanges `Hello`s, and lays the peers' row slices
//! end to end **in `--peer` flag order** to form the union population:
//! peer `i` owns union rows `[Σ n_0..i, Σ n_0..i+1)`. That ordering is
//! part of the query's identity — the same peers in the same order give
//! the same union, and therefore the same bytes as a single box holding
//! the concatenated dataset.
//!
//! Every wire interaction carries a read/write timeout, so a peer that
//! dies mid-query surfaces as a one-line [`SwopeError::Transport`]
//! ("peer addr: …") after at most the I/O timeout — never a hung
//! worker. The server maps that error to `503 Retry-After`.
//!
//! Row-range scopes are handled by shrinking the sampled population to
//! the range and routing the query only to peers whose slices intersect
//! it — non-intersecting peers never hear about the query. Predicate
//! scopes need a row-set scan the wire protocol deliberately does not
//! carry; the server rejects them before reaching this module.

use std::collections::HashMap;
use std::io::Write as _;
use std::net::{TcpStream, ToSocketAddrs};
use std::ops::Range;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use swope_core::{AttrMeta, CountRequest, ShardCounts, ShardTransport, SwopeError};

use crate::frame::{
    read_frame, write_frame, ErrorFrame, Frame, GrowDelta, Hello, QuerySpecFrame, ResultFrame,
    PROTOCOL_VERSION,
};
use crate::stats::ClusterStats;

/// Explicit wire deadlines; both paths must be bounded for the dead-peer
/// 503 guarantee to hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerTimeouts {
    /// TCP connect deadline per peer.
    pub connect: Duration,
    /// Read/write deadline per frame (a slow iteration still exchanges
    /// one frame pair, so this bounds every wait).
    pub io: Duration,
}

impl Default for PeerTimeouts {
    fn default() -> Self {
        Self { connect: Duration::from_secs(2), io: Duration::from_secs(10) }
    }
}

/// A bounded pool of idle peer sessions, shared by every query a
/// coordinator runs.
///
/// Dialing a peer plus the `Hello` exchange costs a TCP handshake per
/// query per peer; under keep-alive HTTP clients issuing many queries
/// that dominates small fan-outs. The pool keeps up to `per_peer`
/// finished sessions alive per peer address. A checkout is *not* trusted
/// blindly: [`RemoteShardSource::connect`] health-checks the socket by
/// running the `Hello` exchange it needed anyway — a stale socket (peer
/// restarted, connection dropped while idle) fails that exchange at the
/// wire level and is silently replaced by one fresh dial, without
/// counting a peer error.
///
/// Streams are checked in only after a clean query end
/// ([`RemoteShardSource::finish`]); aborted or errored sessions drop
/// their sockets, because the peer side closes after any error.
pub struct PeerPool {
    per_peer: usize,
    idle: Mutex<HashMap<String, Vec<TcpStream>>>,
}

impl PeerPool {
    /// Creates a pool retaining at most `per_peer` idle sessions per
    /// peer address (floored at 1).
    pub fn new(per_peer: usize) -> Self {
        Self { per_peer: per_peer.max(1), idle: Mutex::new(HashMap::new()) }
    }

    /// Takes an idle session for `addr`, newest first, if any.
    pub fn checkout(&self, addr: &str) -> Option<TcpStream> {
        self.idle.lock().expect("peer pool lock").get_mut(addr)?.pop()
    }

    /// Returns a healthy session to the pool; beyond the per-peer cap
    /// the stream is simply dropped (closing it).
    pub fn check_in(&self, addr: &str, stream: TcpStream) {
        let mut idle = self.idle.lock().expect("peer pool lock");
        let slot = idle.entry(addr.to_owned()).or_default();
        if slot.len() < self.per_peer {
            slot.push(stream);
        }
    }

    /// Idle sessions currently pooled, across all peers.
    pub fn idle_count(&self) -> usize {
        self.idle.lock().expect("peer pool lock").values().map(Vec::len).sum()
    }
}

impl std::fmt::Debug for PeerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerPool")
            .field("per_peer", &self.per_peer)
            .field("idle", &self.idle_count())
            .finish()
    }
}

struct PeerConn {
    addr: String,
    stream: TcpStream,
    /// This peer's slice of the union, in union row coordinates.
    slice: Range<u64>,
}

/// One-line, addr-tagged transport error (the coordinator's whole error
/// vocabulary: every failure names the peer and the reason).
fn peer_err(addr: &str, reason: impl std::fmt::Display) -> SwopeError {
    SwopeError::Transport(format!("peer {addr}: {reason}"))
}

fn dial(
    addr: &str,
    timeouts: &PeerTimeouts,
    stats: &ClusterStats,
) -> Result<TcpStream, SwopeError> {
    dial_inner(addr, timeouts)
        .map(|stream| {
            stats.record_conn_opened();
            stream
        })
        .map_err(|e| {
            stats.record_peer_error();
            e
        })
}

/// Opens one peer session and runs the `Hello` exchange, preferring a
/// pooled idle socket. A pooled socket that fails the exchange at the
/// wire level went stale while idle (peer restart, dropped connection);
/// it is replaced by exactly one fresh dial with no peer error counted.
/// An [`ErrorFrame`] reply is a live peer objecting — a real error
/// either way, so it propagates.
fn open_session(
    addr: &str,
    hello: &Frame,
    timeouts: &PeerTimeouts,
    stats: &ClusterStats,
    pool: Option<&PeerPool>,
) -> Result<(PeerConn, Frame), SwopeError> {
    if let Some(stream) = pool.and_then(|p| p.checkout(addr)) {
        let mut peer = PeerConn { addr: addr.to_owned(), stream, slice: 0..0 };
        if let Ok(n) = write_frame(&mut peer.stream, hello) {
            stats.record_sent(n);
            if let Ok((frame, n)) = read_frame(&mut peer.stream) {
                stats.record_received(n);
                if let Frame::Error(e) = frame {
                    stats.record_peer_error();
                    return Err(peer_err(addr, e.message));
                }
                stats.record_conn_reuse();
                return Ok((peer, frame));
            }
        }
    }
    let mut peer =
        PeerConn { addr: addr.to_owned(), stream: dial(addr, timeouts, stats)?, slice: 0..0 };
    send(&mut peer, stats, hello)?;
    let frame = recv(&mut peer, stats)?;
    Ok((peer, frame))
}

fn dial_inner(addr: &str, timeouts: &PeerTimeouts) -> Result<TcpStream, SwopeError> {
    let mut last = None;
    let resolved = addr.to_socket_addrs().map_err(|e| peer_err(addr, e))?;
    for sock in resolved {
        match TcpStream::connect_timeout(&sock, timeouts.connect) {
            Ok(stream) => {
                stream.set_read_timeout(Some(timeouts.io)).map_err(|e| peer_err(addr, e))?;
                stream.set_write_timeout(Some(timeouts.io)).map_err(|e| peer_err(addr, e))?;
                let _ = stream.set_nodelay(true);
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(match last {
        Some(e) => peer_err(addr, format!("connect failed: {e}")),
        None => peer_err(addr, "address resolved to nothing"),
    })
}

fn send(peer: &mut PeerConn, stats: &ClusterStats, frame: &Frame) -> Result<(), SwopeError> {
    match write_frame(&mut peer.stream, frame) {
        Ok(n) => {
            stats.record_sent(n);
            Ok(())
        }
        Err(e) => {
            stats.record_peer_error();
            Err(peer_err(&peer.addr, e))
        }
    }
}

fn recv(peer: &mut PeerConn, stats: &ClusterStats) -> Result<Frame, SwopeError> {
    match read_frame(&mut peer.stream) {
        Ok((frame, n)) => {
            stats.record_received(n);
            if let Frame::Error(e) = frame {
                stats.record_peer_error();
                return Err(peer_err(&peer.addr, e.message));
            }
            Ok(frame)
        }
        Err(e) => {
            stats.record_peer_error();
            Err(peer_err(&peer.addr, e))
        }
    }
}

/// What a startup probe learns about a peer fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterProbe {
    /// Peers that answered, in configuration order.
    pub peers: usize,
    /// Total rows across the fleet's (default) datasets.
    pub union_rows: u64,
}

/// Dials every peer once and sums their default datasets' rows — the
/// server's startup validation and gauge source. Any unreachable peer is
/// an error: a coordinator should not come up pointing at a dead fleet.
pub fn probe(
    addrs: &[String],
    timeouts: &PeerTimeouts,
    stats: &ClusterStats,
) -> Result<ClusterProbe, SwopeError> {
    let mut union_rows = 0u64;
    for addr in addrs {
        let mut peer =
            PeerConn { addr: addr.clone(), stream: dial(addr, timeouts, stats)?, slice: 0..0 };
        send(
            &mut peer,
            stats,
            &Frame::Hello(Hello {
                version: PROTOCOL_VERSION,
                dataset: String::new(),
                num_rows: 0,
                attrs: Vec::new(),
            }),
        )?;
        match recv(&mut peer, stats)? {
            Frame::Hello(h) => union_rows += h.num_rows,
            f => return Err(peer_err(addr, format!("expected Hello, got {}", f.name()))),
        }
    }
    Ok(ClusterProbe { peers: addrs.len(), union_rows })
}

/// A wire-backed [`ShardTransport`]: one connected peer per shard.
///
/// Lives for one query. Dropping it (or calling
/// [`RemoteShardSource::finish`]) tells every participant the query is
/// over so peer sessions can await their next `QuerySpec`.
pub struct RemoteShardSource {
    peers: Vec<PeerConn>,
    meta: Vec<AttrMeta>,
    population: u64,
    base: u64,
    sampled: u64,
    finished: bool,
    stats: Arc<ClusterStats>,
    pool: Option<Arc<PeerPool>>,
}

impl RemoteShardSource {
    /// Connects to `addrs`, opens `dataset`, and pins the query's
    /// sampling frame (`seed`, optional row-range `scope` in union
    /// coordinates). With a `pool`, idle sessions from earlier queries
    /// are reused after a `Hello` health check (and checked back in on
    /// [`RemoteShardSource::finish`]); without one, every query dials
    /// fresh.
    ///
    /// # Errors
    ///
    /// [`SwopeError::Transport`] when a peer is unreachable, times out,
    /// disagrees on schema, or reports an error;
    /// [`SwopeError::InvalidScope`] when `scope` falls outside the union;
    /// [`SwopeError::EmptyDataset`] when the fleet holds no rows.
    pub fn connect(
        addrs: &[String],
        dataset: &str,
        seed: u64,
        scope: Option<Range<u64>>,
        timeouts: &PeerTimeouts,
        stats: Arc<ClusterStats>,
        pool: Option<Arc<PeerPool>>,
    ) -> Result<Self, SwopeError> {
        if addrs.is_empty() {
            return Err(SwopeError::Transport("no peers configured".into()));
        }
        stats.record_query();
        let hello = Frame::Hello(Hello {
            version: PROTOCOL_VERSION,
            dataset: dataset.to_owned(),
            num_rows: 0,
            attrs: Vec::new(),
        });
        let mut peers = Vec::with_capacity(addrs.len());
        let mut meta: Option<Vec<AttrMeta>> = None;
        let mut offset = 0u64;
        for addr in addrs {
            let (mut peer, reply) = open_session(addr, &hello, timeouts, &stats, pool.as_deref())?;
            let reply = match reply {
                Frame::Hello(h) => h,
                f => return Err(peer_err(addr, format!("expected Hello, got {}", f.name()))),
            };
            if reply.version != PROTOCOL_VERSION {
                return Err(peer_err(addr, format!("speaks protocol v{}", reply.version)));
            }
            match &meta {
                None => meta = Some(reply.attrs),
                Some(m) if *m != reply.attrs => {
                    return Err(peer_err(
                        addr,
                        "schema disagrees with the first peer (shards must share names and supports)",
                    ));
                }
                Some(_) => {}
            }
            peer.slice = offset..offset + reply.num_rows;
            offset += reply.num_rows;
            peers.push(peer);
        }
        let union_rows = offset;
        if union_rows == 0 {
            return Err(SwopeError::EmptyDataset);
        }
        // Mirror the single-box scope rule: the end clamps to the union's
        // row count, an empty range is an error.
        let scope = scope.unwrap_or(0..union_rows);
        let end = scope.end.min(union_rows);
        if scope.start >= end {
            return Err(SwopeError::InvalidScope(format!(
                "row range [{}, {}) is empty against the union's {union_rows} rows",
                scope.start, scope.end
            )));
        }
        let scope = scope.start..end;
        // Scoped queries involve only the peers whose slices intersect
        // the range; the rest never hear about this query. Their sessions
        // are healthy (Hello only, no QuerySpec), so they go straight
        // back to the pool instead of closing.
        let mut kept = Vec::with_capacity(peers.len());
        for peer in peers {
            if peer.slice.start < scope.end && peer.slice.end > scope.start {
                kept.push(peer);
            } else if let Some(pool) = &pool {
                pool.check_in(&peer.addr, peer.stream);
            }
        }
        let mut peers = kept;
        let spec = QuerySpecFrame {
            seed,
            population: scope.end - scope.start,
            base: scope.start,
            shard_start: 0,
            shard_end: 0,
        };
        for peer in &mut peers {
            let spec = QuerySpecFrame {
                shard_start: peer.slice.start,
                shard_end: peer.slice.end,
                ..spec.clone()
            };
            send(peer, &stats, &Frame::QuerySpec(spec))?;
        }
        Ok(Self {
            peers,
            meta: meta.unwrap_or_default(),
            population: scope.end - scope.start,
            base: scope.start,
            sampled: 0,
            finished: false,
            stats,
            pool,
        })
    }

    /// Total rows across the fleet for this query's population (scoped).
    pub fn population(&self) -> u64 {
        self.population
    }

    /// First union row of the scope (0 when unscoped).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Participating peers (after scope routing).
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Tells every participant the query is over (best effort) and stops
    /// further use. Also runs on drop. Sessions that acknowledge the end
    /// cleanly are returned to the pool (when pooling) for the next
    /// query; anything that failed the goodbye is closed.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let frame = Frame::Result(ResultFrame { sampled: self.sampled });
        for mut peer in self.peers.drain(..) {
            let clean = send(&mut peer, &self.stats, &frame).is_ok() && peer.stream.flush().is_ok();
            if clean {
                if let Some(pool) = &self.pool {
                    pool.check_in(&peer.addr, peer.stream);
                }
            }
        }
    }

    /// Aborts the query with a reason (best effort), e.g. when the
    /// engine fails between iterations.
    pub fn abort(&mut self, reason: &str) {
        if self.finished {
            return;
        }
        self.finished = true;
        let frame = Frame::Error(ErrorFrame { message: reason.to_owned() });
        for peer in &mut self.peers {
            let _ = send(peer, &self.stats, &frame);
        }
    }
}

impl std::fmt::Debug for RemoteShardSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteShardSource")
            .field("peers", &self.peers.len())
            .field("population", &self.population)
            .field("base", &self.base)
            .field("finished", &self.finished)
            .finish()
    }
}

impl Drop for RemoteShardSource {
    fn drop(&mut self) {
        self.finish();
    }
}

impl ShardTransport for RemoteShardSource {
    fn num_rows(&self) -> usize {
        self.population as usize
    }

    fn attrs(&self) -> &[AttrMeta] {
        &self.meta
    }

    fn num_shards(&self) -> usize {
        self.peers.len()
    }

    fn advance(
        &mut self,
        m_target: usize,
        req: &CountRequest,
    ) -> Result<Vec<ShardCounts>, SwopeError> {
        if self.finished {
            return Err(SwopeError::Transport("query already finished".into()));
        }
        let grow = Frame::GrowDelta(GrowDelta {
            m_target: m_target as u64,
            target: req.target.map(|t| t as u32),
            live: req.live.iter().map(|&a| a as u32).collect(),
        });
        // Scatter to every participant first, then gather: peers count
        // their deltas concurrently while we read replies in order.
        for peer in &mut self.peers {
            send(peer, &self.stats, &grow)?;
        }
        let mut out = Vec::with_capacity(self.peers.len());
        for peer in &mut self.peers {
            let counts = match recv(peer, &self.stats)? {
                Frame::CountMerge(c) => c.into_counts().map_err(|e| peer_err(&peer.addr, e))?,
                f => {
                    return Err(peer_err(
                        &peer.addr,
                        format!("expected CountMerge, got {}", f.name()),
                    ))
                }
            };
            if counts.attrs.len() != req.live.len()
                || counts.target.is_some() != req.target.is_some()
            {
                return Err(peer_err(&peer.addr, "CountMerge shape disagrees with the request"));
            }
            out.push(counts);
        }
        self.sampled = (m_target as u64).min(self.population);
        self.stats.record_merge();
        Ok(out)
    }
}
