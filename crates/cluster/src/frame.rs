//! The cluster wire format: length-prefixed, CRC32-trailed typed frames.
//!
//! Every frame on a coordinator↔peer connection has the same envelope,
//! little-endian throughout:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "SWPC"
//! 4       1     frame tag (1=Hello … 6=Error)
//! 5       4     payload length (u32, ≤ 64 MiB)
//! 9       len   payload
//! 9+len   4     CRC32 over bytes [4, 9+len)  (tag + length + payload)
//! ```
//!
//! The CRC covers the tag and length as well as the payload, mirroring
//! the SWOP v2 snapshot sections: a flipped tag or a truncating length
//! is as detectable as flipped payload bytes. The magic doubles as the
//! connection sniff the server uses to tell cluster sessions from HTTP
//! on a shared port — no HTTP method starts with `SWPC`.
//!
//! Variable-size fields use `u32` length + UTF-8 bytes for strings, and
//! `u32` element counts for lists. Count histograms travel in canonical
//! form — `(code, count)` entries in ascending code order, joint runs as
//! `(packed_key, count)` in ascending key order — which is exactly the
//! order-independent representation the exact-merge argument needs (see
//! `swope_core::shard`): re-encoding a decoded frame is byte-identical.

use std::io::{Read, Write};

use swope_core::{AttrMeta, CountState, PairCountState, ShardCounts};
use swope_store::crc32::crc32;

/// Connection-sniffing magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"SWPC";

/// Wire protocol version carried in [`Hello`] frames; peers reject
/// mismatches rather than guessing.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a frame payload. A `CountMerge` over the widest
/// supported attribute set stays far below this; anything larger is a
/// corrupt or hostile length field.
pub const MAX_PAYLOAD: u32 = 64 << 20;

const HEADER_LEN: usize = 9;

/// Why a frame could not be read or decoded. One line per variant —
/// these surface verbatim in coordinator 503 bodies.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (including read timeouts).
    Io(std::io::Error),
    /// The stream did not start with [`MAGIC`] — not a cluster peer.
    BadMagic([u8; 4]),
    /// A tag outside the known frame vocabulary.
    UnknownTag(u8),
    /// A length field beyond [`MAX_PAYLOAD`].
    Oversize(u32),
    /// The CRC32 trailer did not match the received bytes.
    Crc {
        /// CRC computed over the received bytes.
        computed: u32,
        /// CRC carried in the trailer.
        stored: u32,
    },
    /// The payload did not parse as its tag's layout.
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o failed: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?} (expected \"SWPC\")"),
            FrameError::UnknownTag(t) => write!(f, "unknown frame tag {t}"),
            FrameError::Oversize(n) => write!(f, "frame payload of {n} bytes exceeds the limit"),
            FrameError::Crc { computed, stored } => {
                write!(f, "frame checksum mismatch: computed {computed:08x}, stored {stored:08x}")
            }
            FrameError::Malformed(what) => write!(f, "malformed frame payload: {what}"),
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// True when the error is the peer closing the stream cleanly (EOF
    /// before any frame byte) — end of session, not a failure.
    pub fn is_eof(&self) -> bool {
        matches!(self, FrameError::Io(e) if e.kind() == std::io::ErrorKind::UnexpectedEof)
    }
}

/// `Hello`: the session opener, symmetric in shape. The coordinator
/// sends the dataset name it wants (with `num_rows = 0` and no attrs);
/// the peer replies with its row count and attribute metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Hello {
    /// Must equal [`PROTOCOL_VERSION`] on both sides.
    pub version: u32,
    /// Registry name of the dataset ("" asks the peer for its default).
    pub dataset: String,
    /// Peer's local row count (0 in the coordinator's request).
    pub num_rows: u64,
    /// Peer's attribute names and supports (empty in the request).
    pub attrs: Vec<AttrMeta>,
}

/// `QuerySpec`: pins one query's global sampling frame. The peer replays
/// the union-wide prefix shuffle from `seed` over `population` rows;
/// sampled index `i` names union row `base + i`, and the peer counts it
/// iff it falls in the peer's own `[shard_start, shard_end)` slice
/// (local row `base + i - shard_start`). Unscoped queries have
/// `base = 0` and `population = Σ n_peer`; a row-range scope shrinks
/// `population` and offsets `base`, and only intersecting peers hear
/// about the query at all.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpecFrame {
    /// Global sampling seed shared by every peer.
    pub seed: u64,
    /// Rows in the (possibly scoped) union population.
    pub population: u64,
    /// First union row of the scope (0 when unscoped).
    pub base: u64,
    /// First union row this peer owns.
    pub shard_start: u64,
    /// One past the last union row this peer owns.
    pub shard_end: u64,
}

/// `GrowDelta`: one doubling iteration's counting request — grow the
/// shared sample to `m_target` and count the newly sampled rows for the
/// still-live attributes (paired against `target` for MI queries).
#[derive(Debug, Clone, PartialEq)]
pub struct GrowDelta {
    /// Cumulative sample-size target (absolute, not a delta).
    pub m_target: u64,
    /// MI target attribute index, `None` for entropy queries.
    pub target: Option<u32>,
    /// Still-live attribute indexes, in engine state order.
    pub live: Vec<u32>,
}

/// `CountMerge`: a peer's integer count deltas for one `GrowDelta`, in
/// canonical (sorted) form. Decoding reconstitutes a
/// [`ShardCounts`] ready for the engine's exact merge.
#[derive(Debug, Clone, PartialEq)]
pub struct CountMergeFrame {
    /// Target histogram as `(support, entries)` (`Some` iff the request
    /// had a target).
    pub target: Option<(u32, Vec<(u32, u64)>)>,
    /// Per-live-attribute `(support, entries)` marginal histograms.
    pub attrs: Vec<(u32, Vec<(u32, u64)>)>,
    /// Per-live-attribute joint runs (empty lists for entropy queries).
    pub joints: Vec<Vec<(u64, u64)>>,
}

/// `Result`: the coordinator's end-of-query signal (the answer itself
/// never travels — peers only ever see counting work). `sampled` echoes
/// the final sample size so peers can sanity-check and log.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultFrame {
    /// Final cumulative sample size when the query stopped.
    pub sampled: u64,
}

/// `Error`: a one-line failure report, either direction. The receiving
/// side surfaces the message and abandons the query.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorFrame {
    /// Human-readable single-line reason.
    pub message: String,
}

/// One typed protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Session opener / metadata reply.
    Hello(Hello),
    /// Per-query sampling frame.
    QuerySpec(QuerySpecFrame),
    /// Per-iteration counting request.
    GrowDelta(GrowDelta),
    /// Per-iteration count reply.
    CountMerge(CountMergeFrame),
    /// End-of-query signal.
    Result(ResultFrame),
    /// One-line failure report.
    Error(ErrorFrame),
}

impl Frame {
    fn tag(&self) -> u8 {
        match self {
            Frame::Hello(_) => 1,
            Frame::QuerySpec(_) => 2,
            Frame::GrowDelta(_) => 3,
            Frame::CountMerge(_) => 4,
            Frame::Result(_) => 5,
            Frame::Error(_) => 6,
        }
    }

    /// The frame's type name, for error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello(_) => "Hello",
            Frame::QuerySpec(_) => "QuerySpec",
            Frame::GrowDelta(_) => "GrowDelta",
            Frame::CountMerge(_) => "CountMerge",
            Frame::Result(_) => "Result",
            Frame::Error(_) => "Error",
        }
    }
}

impl CountMergeFrame {
    /// Canonicalizes a shard's counts into wire form. Takes `&mut`
    /// because joint runs are sorted and coalesced in place.
    pub fn from_counts(counts: &mut ShardCounts) -> Self {
        let encode = |cs: &CountState| (cs.support(), cs.sorted_entries());
        Self {
            target: counts.target.as_ref().map(&encode),
            attrs: counts.attrs.iter().map(&encode).collect(),
            joints: counts.joints.iter_mut().map(|j| j.canonical_runs().to_vec()).collect(),
        }
    }

    /// Reconstitutes engine-side count states, validating every code
    /// against its histogram's support (a hostile frame must not panic
    /// the engine).
    pub fn into_counts(self) -> Result<ShardCounts, FrameError> {
        fn decode(support: u32, entries: Vec<(u32, u64)>) -> Result<CountState, FrameError> {
            let mut cs = CountState::new(support);
            for (code, k) in entries {
                if code >= support {
                    return Err(FrameError::Malformed("count entry code beyond support"));
                }
                cs.increment(code, k);
            }
            Ok(cs)
        }
        if self.attrs.len() != self.joints.len() {
            return Err(FrameError::Malformed("attr/joint list length mismatch"));
        }
        let target = self.target.map(|(s, e)| decode(s, e)).transpose()?;
        let attrs =
            self.attrs.into_iter().map(|(s, e)| decode(s, e)).collect::<Result<Vec<_>, _>>()?;
        let joints = self
            .joints
            .into_iter()
            .map(|runs| {
                let mut pc = PairCountState::new();
                for (key, k) in runs {
                    pc.increment(key, k);
                }
                pc
            })
            .collect();
        Ok(ShardCounts { target, attrs, joints })
    }
}

// ---- payload writers -------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_entries(out: &mut Vec<u8>, support: u32, entries: &[(u32, u64)]) {
    put_u32(out, support);
    put_u32(out, entries.len() as u32);
    for &(code, k) in entries {
        put_u32(out, code);
        put_u64(out, k);
    }
}

fn payload(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    match frame {
        Frame::Hello(h) => {
            put_u32(&mut out, h.version);
            put_str(&mut out, &h.dataset);
            put_u64(&mut out, h.num_rows);
            put_u32(&mut out, h.attrs.len() as u32);
            for a in &h.attrs {
                put_str(&mut out, &a.name);
                put_u32(&mut out, a.support);
            }
        }
        Frame::QuerySpec(q) => {
            put_u64(&mut out, q.seed);
            put_u64(&mut out, q.population);
            put_u64(&mut out, q.base);
            put_u64(&mut out, q.shard_start);
            put_u64(&mut out, q.shard_end);
        }
        Frame::GrowDelta(g) => {
            put_u64(&mut out, g.m_target);
            out.push(g.target.is_some() as u8);
            put_u32(&mut out, g.target.unwrap_or(0));
            put_u32(&mut out, g.live.len() as u32);
            for &a in &g.live {
                put_u32(&mut out, a);
            }
        }
        Frame::CountMerge(c) => {
            out.push(c.target.is_some() as u8);
            if let Some((support, entries)) = &c.target {
                put_entries(&mut out, *support, entries);
            }
            put_u32(&mut out, c.attrs.len() as u32);
            for (support, entries) in &c.attrs {
                put_entries(&mut out, *support, entries);
            }
            put_u32(&mut out, c.joints.len() as u32);
            for runs in &c.joints {
                put_u32(&mut out, runs.len() as u32);
                for &(key, k) in runs {
                    put_u64(&mut out, key);
                    put_u64(&mut out, k);
                }
            }
        }
        Frame::Result(r) => put_u64(&mut out, r.sampled),
        Frame::Error(e) => put_str(&mut out, &e.message),
    }
    out
}

// ---- payload reader --------------------------------------------------

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end =
            self.pos.checked_add(n).ok_or(FrameError::Malformed("length overflows payload"))?;
        if end > self.bytes.len() {
            return Err(FrameError::Malformed("payload shorter than its layout"));
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, FrameError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| FrameError::Malformed("string field is not UTF-8"))
    }

    /// Guards list preallocation: a hostile count must not allocate more
    /// than the payload could possibly hold.
    fn list_len(&mut self, elem_size: usize) -> Result<usize, FrameError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_size) > self.bytes.len() - self.pos {
            return Err(FrameError::Malformed("list count exceeds payload size"));
        }
        Ok(n)
    }

    fn entries(&mut self) -> Result<(u32, Vec<(u32, u64)>), FrameError> {
        let support = self.u32()?;
        let n = self.list_len(12)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push((self.u32()?, self.u64()?));
        }
        Ok((support, entries))
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.pos != self.bytes.len() {
            return Err(FrameError::Malformed("trailing bytes after payload"));
        }
        Ok(())
    }
}

fn decode_payload(tag: u8, bytes: &[u8]) -> Result<Frame, FrameError> {
    let mut c = Cursor { bytes, pos: 0 };
    let frame = match tag {
        1 => {
            let version = c.u32()?;
            let dataset = c.str()?;
            let num_rows = c.u64()?;
            let n = c.list_len(8)?;
            let mut attrs = Vec::with_capacity(n);
            for _ in 0..n {
                let name = c.str()?;
                let support = c.u32()?;
                attrs.push(AttrMeta { name, support });
            }
            Frame::Hello(Hello { version, dataset, num_rows, attrs })
        }
        2 => Frame::QuerySpec(QuerySpecFrame {
            seed: c.u64()?,
            population: c.u64()?,
            base: c.u64()?,
            shard_start: c.u64()?,
            shard_end: c.u64()?,
        }),
        3 => {
            let m_target = c.u64()?;
            let has_target = c.u8()? != 0;
            let target_raw = c.u32()?;
            let n = c.list_len(4)?;
            let mut live = Vec::with_capacity(n);
            for _ in 0..n {
                live.push(c.u32()?);
            }
            Frame::GrowDelta(GrowDelta { m_target, target: has_target.then_some(target_raw), live })
        }
        4 => {
            let target = if c.u8()? != 0 { Some(c.entries()?) } else { None };
            let n = c.list_len(4)?;
            let mut attrs = Vec::with_capacity(n);
            for _ in 0..n {
                attrs.push(c.entries()?);
            }
            let n = c.list_len(4)?;
            let mut joints = Vec::with_capacity(n);
            for _ in 0..n {
                let r = c.list_len(16)?;
                let mut runs = Vec::with_capacity(r);
                for _ in 0..r {
                    runs.push((c.u64()?, c.u64()?));
                }
                joints.push(runs);
            }
            Frame::CountMerge(CountMergeFrame { target, attrs, joints })
        }
        5 => Frame::Result(ResultFrame { sampled: c.u64()? }),
        6 => Frame::Error(ErrorFrame { message: c.str()? }),
        other => return Err(FrameError::UnknownTag(other)),
    };
    c.finish()?;
    Ok(frame)
}

// ---- envelope --------------------------------------------------------

/// Encodes a frame into its full wire envelope (magic through CRC).
pub fn encode(frame: &Frame) -> Vec<u8> {
    let body = payload(frame);
    let mut out = Vec::with_capacity(HEADER_LEN + body.len() + 4);
    out.extend_from_slice(&MAGIC);
    out.push(frame.tag());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes one complete envelope. The input must be exactly one frame.
pub fn decode(bytes: &[u8]) -> Result<Frame, FrameError> {
    if bytes.len() < HEADER_LEN + 4 {
        return Err(FrameError::Malformed("envelope shorter than header + trailer"));
    }
    if bytes[..4] != MAGIC {
        return Err(FrameError::BadMagic(bytes[..4].try_into().unwrap()));
    }
    let tag = bytes[4];
    let len = u32::from_le_bytes(bytes[5..9].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversize(len));
    }
    if bytes.len() != HEADER_LEN + len as usize + 4 {
        return Err(FrameError::Malformed("envelope length disagrees with length field"));
    }
    let crc_at = bytes.len() - 4;
    let stored = u32::from_le_bytes(bytes[crc_at..].try_into().unwrap());
    let computed = crc32(&bytes[4..crc_at]);
    if computed != stored {
        return Err(FrameError::Crc { computed, stored });
    }
    decode_payload(tag, &bytes[HEADER_LEN..crc_at])
}

/// Writes one frame to a stream, returning the bytes put on the wire.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<usize, FrameError> {
    let bytes = encode(frame);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len())
}

/// Reads one frame from a stream, returning it with its wire size.
///
/// A clean EOF before the first header byte surfaces as an
/// [`FrameError::Io`] with `UnexpectedEof` (see [`FrameError::is_eof`]).
pub fn read_frame<R: Read>(r: &mut R) -> Result<(Frame, usize), FrameError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    if header[..4] != MAGIC {
        return Err(FrameError::BadMagic(header[..4].try_into().unwrap()));
    }
    let tag = header[4];
    let len = u32::from_le_bytes(header[5..9].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversize(len));
    }
    let mut rest = vec![0u8; len as usize + 4];
    r.read_exact(&mut rest)?;
    let crc_at = rest.len() - 4;
    let stored = u32::from_le_bytes(rest[crc_at..].try_into().unwrap());
    let mut covered = Vec::with_capacity(5 + crc_at);
    covered.extend_from_slice(&header[4..]);
    covered.extend_from_slice(&rest[..crc_at]);
    let computed = crc32(&covered);
    if computed != stored {
        return Err(FrameError::Crc { computed, stored });
    }
    let frame = decode_payload(tag, &rest[..crc_at])?;
    Ok((frame, HEADER_LEN + rest.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Frame> {
        vec![
            Frame::Hello(Hello {
                version: PROTOCOL_VERSION,
                dataset: "flights".into(),
                num_rows: 12_345,
                attrs: vec![
                    AttrMeta { name: "carrier".into(), support: 14 },
                    AttrMeta { name: "origin".into(), support: 350 },
                ],
            }),
            Frame::Hello(Hello {
                version: PROTOCOL_VERSION,
                dataset: String::new(),
                num_rows: 0,
                attrs: Vec::new(),
            }),
            Frame::QuerySpec(QuerySpecFrame {
                seed: 0xDEAD_BEEF,
                population: 1_000_000,
                base: 250,
                shard_start: 500_000,
                shard_end: 750_000,
            }),
            Frame::GrowDelta(GrowDelta { m_target: 4096, target: Some(3), live: vec![0, 1, 5] }),
            Frame::GrowDelta(GrowDelta { m_target: 64, target: None, live: vec![2] }),
            Frame::CountMerge(CountMergeFrame {
                target: Some((4, vec![(0, 10), (3, 2)])),
                attrs: vec![(8, vec![(1, 5), (7, 1)]), (2, vec![])],
                joints: vec![vec![(0x0000_0003_0000_0001, 4)], vec![]],
            }),
            Frame::Result(ResultFrame { sampled: 8192 }),
            Frame::Error(ErrorFrame { message: "no dataset named \"x\"".into() }),
        ]
    }

    #[test]
    fn round_trip_every_frame() {
        for frame in samples() {
            let bytes = encode(&frame);
            assert_eq!(decode(&bytes).unwrap(), frame, "{}", frame.name());
            // Stream reader agrees with the one-shot decoder.
            let mut cursor = std::io::Cursor::new(bytes.clone());
            let (read, n) = read_frame(&mut cursor).unwrap();
            assert_eq!(read, frame);
            assert_eq!(n, bytes.len());
        }
    }

    #[test]
    fn frames_concatenate_on_a_stream() {
        let frames = samples();
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut cursor = std::io::Cursor::new(wire);
        for f in &frames {
            assert_eq!(&read_frame(&mut cursor).unwrap().0, f);
        }
        assert!(read_frame(&mut cursor).unwrap_err().is_eof());
    }

    #[test]
    fn corruption_is_detected_everywhere() {
        let frame = samples().remove(5);
        let clean = encode(&frame);
        // Flipping any single bit past the magic must be caught (the CRC
        // covers tag, length, and payload; the magic check covers 0..4).
        for byte in 0..clean.len() {
            let mut bad = clean.clone();
            bad[byte] ^= 0x40;
            assert!(decode(&bad).is_err(), "flip at byte {byte} went undetected");
        }
    }

    #[test]
    fn truncation_and_oversize_are_rejected() {
        let bytes = encode(&samples().remove(0));
        for cut in 0..bytes.len() {
            let mut short = std::io::Cursor::new(bytes[..cut].to_vec());
            assert!(read_frame(&mut short).is_err(), "truncation at {cut} accepted");
            assert!(decode(&bytes[..cut]).is_err());
        }
        let mut huge = bytes.clone();
        huge[5..9].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(decode(&huge), Err(FrameError::Oversize(_))));
        let mut cursor = std::io::Cursor::new(huge);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Oversize(_))));
    }

    #[test]
    fn http_bytes_are_not_frames() {
        let mut http = std::io::Cursor::new(b"GET /healthz HTTP/1.1\r\n\r\n".to_vec());
        assert!(matches!(read_frame(&mut http), Err(FrameError::BadMagic(_))));
    }

    #[test]
    fn hostile_list_counts_do_not_allocate() {
        // A Hello claiming 2^32-ish attrs in a tiny payload must fail
        // cleanly instead of reserving gigabytes.
        let mut body = Vec::new();
        put_u32(&mut body, PROTOCOL_VERSION);
        put_str(&mut body, "x");
        put_u64(&mut body, 0);
        put_u32(&mut body, u32::MAX);
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.push(1);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        let crc = crc32(&out[4..]);
        out.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(decode(&out), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn count_merge_round_trips_through_shard_counts() {
        let mut a = CountState::new(6);
        a.add(5);
        a.add(1);
        a.add(5);
        let mut t = CountState::new(3);
        t.add(2);
        let mut j = PairCountState::new();
        j.add(2, 5);
        j.add(2, 5);
        j.add(0, 1);
        let mut counts =
            ShardCounts { target: Some(t.clone()), attrs: vec![a.clone()], joints: vec![j] };
        let frame = CountMergeFrame::from_counts(&mut counts);
        let back = frame.clone().into_counts().unwrap();
        assert_eq!(back.target.as_ref().unwrap().sorted_entries(), t.sorted_entries());
        assert_eq!(back.attrs[0].sorted_entries(), a.sorted_entries());
        let mut joint = back.joints[0].clone();
        assert_eq!(joint.canonical_runs(), frame.joints[0].as_slice());
        // Canonical in, canonical out: re-encoding is byte-identical.
        let mut back2 = back;
        assert_eq!(CountMergeFrame::from_counts(&mut back2), frame);
    }

    #[test]
    fn count_merge_rejects_out_of_support_codes() {
        let frame =
            CountMergeFrame { target: None, attrs: vec![(4, vec![(4, 1)])], joints: vec![vec![]] };
        assert!(frame.into_counts().is_err());
    }
}
