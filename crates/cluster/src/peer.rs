//! The peer (shard server) side of the protocol: answer counting work
//! over a locally resident dataset slice.
//!
//! A peer session is a tiny state machine on one connection:
//!
//! ```text
//! coordinator                         peer
//! -----------                         ----
//! Hello(dataset) ────────────────────▶
//!            ◀──────────────────────── Hello(num_rows, attrs)
//! QuerySpec(seed, population, …) ────▶          ┐ per
//! GrowDelta(m₁, live) ───────────────▶          │ query
//!            ◀──────────────────────── CountMerge │ (repeats
//! GrowDelta(m₂, live′) ──────────────▶          │  per
//!            ◀──────────────────────── CountMerge │  iteration)
//! Result(sampled) ───────────────────▶          ┘
//! ```
//!
//! The peer never sees scores or bounds — only integer count work. It
//! replays the *global* prefix shuffle named by `QuerySpec` (same seed,
//! same population as every other peer and as a single-box run) and
//! counts just the sampled rows that land in its own `[shard_start,
//! shard_end)` slice of the union, which is what makes the coordinator's
//! merged answer bitwise-identical to a local run over the union (see
//! `swope_core::shard`).
//!
//! Protocol violations and unknown datasets are answered with an
//! [`ErrorFrame`] and end the session; a clean EOF from the coordinator
//! ends it silently. All counting here is single-threaded: a peer's
//! parallelism across queries comes from serving many connections.

use std::io::{Read, Write};
use std::sync::Arc;

use swope_columnar::{CodeRepr, ColumnStorage, Dataset};
use swope_core::{AttrMeta, CountState, PairCountState, ShardCounts};
use swope_sampling::{PrefixShuffle, Sampler};
use swope_store::for_packed;

use crate::frame::{
    read_frame, write_frame, CountMergeFrame, ErrorFrame, Frame, FrameError, GrowDelta, Hello,
    QuerySpecFrame, PROTOCOL_VERSION,
};
use crate::stats::ClusterStats;

/// Resolves a dataset name to a resident dataset; `""` means "the
/// peer's default dataset" (servers map it to their first loaded one).
pub type DatasetResolver<'a> = dyn Fn(&str) -> Option<Arc<Dataset>> + 'a;

fn dataset_meta(ds: &Dataset) -> Vec<AttrMeta> {
    ds.schema()
        .fields()
        .iter()
        .map(|f| AttrMeta { name: f.name().to_owned(), support: f.support() })
        .collect()
}

fn send<S: Write>(io: &mut S, stats: &ClusterStats, frame: &Frame) -> Result<(), FrameError> {
    let n = write_frame(io, frame)?;
    stats.record_sent(n);
    Ok(())
}

fn recv<S: Read>(io: &mut S, stats: &ClusterStats) -> Result<Frame, FrameError> {
    let (frame, n) = read_frame(io)?;
    stats.record_received(n);
    Ok(frame)
}

/// Sends a one-line [`ErrorFrame`] (best effort) and reports the reason
/// as this session's outcome.
fn bail<S: Read + Write>(io: &mut S, stats: &ClusterStats, message: String) -> SessionEnd {
    stats.record_peer_error();
    let _ = send(io, stats, &Frame::Error(ErrorFrame { message: message.clone() }));
    SessionEnd::Error(message)
}

/// How a peer session finished, for the server's logs/metrics.
#[derive(Debug, PartialEq)]
pub enum SessionEnd {
    /// The coordinator closed the connection after zero or more queries.
    Closed,
    /// The session was aborted; the message was also sent to the
    /// coordinator as an [`ErrorFrame`] where the stream still worked.
    Error(String),
}

/// Serves one coordinator connection until EOF or a protocol error.
///
/// `io` is the connected stream (already past any magic-byte sniffing —
/// this function reads whole frames, starting with the coordinator's
/// `Hello`). `resolve` maps dataset names to resident datasets.
///
/// A `Hello` is accepted at any point *between* queries, not just as the
/// session opener: a coordinator reusing a pooled connection re-sends
/// `Hello` as a health-check-plus-open for its next query (possibly
/// against a different dataset), and the peer re-resolves and re-replies
/// exactly as it did the first time.
pub fn serve_connection<S: Read + Write>(
    io: &mut S,
    resolve: &DatasetResolver<'_>,
    stats: &ClusterStats,
) -> SessionEnd {
    // No dataset is open until the first Hello resolves one; each later
    // Hello (pooled-connection reuse) replaces it.
    let mut ds: Option<Arc<Dataset>> = None;
    loop {
        match recv(io, stats) {
            Ok(Frame::Hello(hello)) => {
                if hello.version != PROTOCOL_VERSION {
                    return bail(
                        io,
                        stats,
                        format!(
                            "protocol version {} unsupported (peer speaks {PROTOCOL_VERSION})",
                            hello.version
                        ),
                    );
                }
                let Some(resolved) = resolve(&hello.dataset) else {
                    return bail(
                        io,
                        stats,
                        format!("no dataset named {:?} is loaded", hello.dataset),
                    );
                };
                let reply = Hello {
                    version: PROTOCOL_VERSION,
                    dataset: hello.dataset,
                    num_rows: resolved.num_rows() as u64,
                    attrs: dataset_meta(&resolved),
                };
                if let Err(e) = send(io, stats, &Frame::Hello(reply)) {
                    stats.record_peer_error();
                    return SessionEnd::Error(e.to_string());
                }
                ds = Some(resolved);
            }
            Ok(Frame::QuerySpec(spec)) => {
                let Some(ds) = &ds else {
                    return bail(io, stats, "QuerySpec before any Hello".into());
                };
                if let Err(msg) = validate_spec(ds, &spec) {
                    return bail(io, stats, msg);
                }
                match serve_query(io, ds, &spec, stats) {
                    Ok(()) => {}
                    Err(QueryEnd::Closed) => return SessionEnd::Closed,
                    Err(QueryEnd::Aborted) => return SessionEnd::Closed,
                    Err(QueryEnd::Fail(msg)) => return bail(io, stats, msg),
                }
            }
            Ok(f) => {
                let expected = if ds.is_some() { "Hello or QuerySpec" } else { "Hello" };
                return bail(io, stats, format!("expected {expected}, got {}", f.name()));
            }
            Err(e) if e.is_eof() => return SessionEnd::Closed,
            Err(e) => return bail(io, stats, e.to_string()),
        }
    }
}

fn validate_spec(ds: &Dataset, q: &QuerySpecFrame) -> Result<(), String> {
    let local = ds.num_rows() as u64;
    if q.shard_end.checked_sub(q.shard_start) != Some(local) {
        return Err(format!(
            "QuerySpec places this peer at [{}, {}) but it holds {local} rows",
            q.shard_start, q.shard_end
        ));
    }
    if q.base.checked_add(q.population).is_none() {
        return Err("QuerySpec scope overflows the row index space".into());
    }
    Ok(())
}

enum QueryEnd {
    /// EOF mid-query: the coordinator died or lost interest.
    Closed,
    /// The coordinator sent an Error frame; drop the query quietly.
    Aborted,
    /// Protocol violation worth reporting back.
    Fail(String),
}

/// Runs one query's GrowDelta/CountMerge exchanges until `Result`.
fn serve_query<S: Read + Write>(
    io: &mut S,
    ds: &Dataset,
    spec: &QuerySpecFrame,
    stats: &ClusterStats,
) -> Result<(), QueryEnd> {
    let mut shuffle = PrefixShuffle::new(spec.population as usize, spec.seed);
    let mut rows: Vec<u32> = Vec::new();
    loop {
        let grow = match recv(io, stats) {
            Ok(Frame::GrowDelta(g)) => g,
            Ok(Frame::Result(_)) => return Ok(()),
            Ok(Frame::Error(_)) => return Err(QueryEnd::Aborted),
            Ok(f) => return Err(QueryEnd::Fail(format!("expected GrowDelta, got {}", f.name()))),
            Err(e) if e.is_eof() => return Err(QueryEnd::Closed),
            Err(e) => return Err(QueryEnd::Fail(e.to_string())),
        };
        let attrs = ds.num_attrs() as u32;
        if grow.live.iter().chain(grow.target.iter()).any(|&a| a >= attrs) {
            return Err(QueryEnd::Fail(format!(
                "GrowDelta names an attribute beyond the dataset's {attrs}"
            )));
        }
        // Replay the shared global shuffle; keep only our slice of the
        // newly sampled union rows, as local row indexes.
        rows.clear();
        for &i in shuffle.grow_to(grow.m_target as usize) {
            let union_row = spec.base + i as u64;
            if union_row >= spec.shard_start && union_row < spec.shard_end {
                rows.push((union_row - spec.shard_start) as u32);
            }
        }
        let mut counts = count_rows(ds, &rows, &grow);
        let frame = Frame::CountMerge(CountMergeFrame::from_counts(&mut counts));
        if let Err(e) = send(io, stats, &frame) {
            stats.record_peer_error();
            return Err(QueryEnd::Fail(e.to_string()));
        }
    }
}

/// Counts one delta's rows: target marginal first (gathering its codes),
/// then each live attribute's marginal and, for MI, its joint with the
/// target. Identical per-row logic to `LocalShardSource`, single shard.
fn count_rows(ds: &Dataset, rows: &[u32], grow: &GrowDelta) -> ShardCounts {
    let mut tcodes = Vec::new();
    let target = grow.target.map(|t| {
        let mut counts = CountState::new(ds.support(t as usize));
        tcodes.reserve(rows.len());
        match ds.column(t as usize).storage() {
            ColumnStorage::Heap(packed) => for_packed!(packed.codes(), |codes| {
                for &r in rows {
                    let c = codes[r as usize].widen();
                    counts.add(c);
                    tcodes.push(c);
                }
            }),
            ColumnStorage::Paged(paged) => {
                let mut cur = paged.cursor();
                for &r in rows {
                    let c = cur.code(r as usize);
                    counts.add(c);
                    tcodes.push(c);
                }
            }
        }
        counts
    });
    let mut attrs = Vec::with_capacity(grow.live.len());
    let mut joints = Vec::with_capacity(grow.live.len());
    for &attr in &grow.live {
        let mut out = CountState::new(ds.support(attr as usize));
        let mut pairs = PairCountState::new();
        match ds.column(attr as usize).storage() {
            ColumnStorage::Heap(packed) => for_packed!(packed.codes(), |codes| {
                if grow.target.is_some() {
                    for (&r, &tc) in rows.iter().zip(&tcodes) {
                        let c = codes[r as usize].widen();
                        out.add(c);
                        pairs.add(tc, c);
                    }
                } else {
                    for &r in rows {
                        out.add(codes[r as usize].widen());
                    }
                }
            }),
            ColumnStorage::Paged(paged) => {
                let mut cur = paged.cursor();
                if grow.target.is_some() {
                    for (&r, &tc) in rows.iter().zip(&tcodes) {
                        let c = cur.code(r as usize);
                        out.add(c);
                        pairs.add(tc, c);
                    }
                } else {
                    for &r in rows {
                        out.add(cur.code(r as usize));
                    }
                }
            }
        }
        attrs.push(out);
        joints.push(pairs);
    }
    ShardCounts { target, attrs, joints }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::ResultFrame;

    fn dataset() -> Arc<Dataset> {
        Arc::new(swope_datagen::generate(&swope_datagen::corpus::tiny(500, 4), 0xC1))
    }

    /// An in-memory duplex "stream": reads consume a script, writes
    /// accumulate for inspection.
    struct Pipe {
        input: std::io::Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Pipe {
        fn scripted(frames: &[Frame]) -> Self {
            let mut input = Vec::new();
            for f in frames {
                write_frame(&mut input, f).unwrap();
            }
            Self { input: std::io::Cursor::new(input), output: Vec::new() }
        }

        fn replies(&self) -> Vec<Frame> {
            let mut cursor = std::io::Cursor::new(self.output.clone());
            let mut out = Vec::new();
            while let Ok((f, _)) = read_frame(&mut cursor) {
                out.push(f);
            }
            out
        }
    }

    impl Read for Pipe {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Pipe {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn hello(dataset: &str) -> Frame {
        Frame::Hello(Hello {
            version: PROTOCOL_VERSION,
            dataset: dataset.into(),
            num_rows: 0,
            attrs: Vec::new(),
        })
    }

    #[test]
    fn session_answers_hello_and_counts() {
        let ds = dataset();
        let n = ds.num_rows() as u64;
        let mut pipe = Pipe::scripted(&[
            hello("t"),
            Frame::QuerySpec(QuerySpecFrame {
                seed: 7,
                population: n,
                base: 0,
                shard_start: 0,
                shard_end: n,
            }),
            Frame::GrowDelta(GrowDelta { m_target: 64, target: None, live: vec![0, 1, 2, 3] }),
            Frame::Result(ResultFrame { sampled: 64 }),
        ]);
        let stats = ClusterStats::new();
        let resolve = |name: &str| (name == "t").then(|| Arc::clone(&ds));
        assert_eq!(serve_connection(&mut pipe, &resolve, &stats), SessionEnd::Closed);
        let replies = pipe.replies();
        assert_eq!(replies.len(), 2);
        let Frame::Hello(h) = &replies[0] else { panic!("expected Hello, got {replies:?}") };
        assert_eq!(h.num_rows, n);
        assert_eq!(h.attrs.len(), 4);
        let Frame::CountMerge(c) = &replies[1] else { panic!("expected CountMerge") };
        // The peer owns the whole population here, so all 64 sampled
        // rows are counted for each of the 4 live attributes.
        let counts = c.clone().into_counts().unwrap();
        assert!(counts.target.is_none());
        assert_eq!(counts.attrs.len(), 4);
        for cs in &counts.attrs {
            assert_eq!(cs.total(), 64);
        }
        let snap = stats.snapshot();
        assert_eq!(snap.frames_received, 4);
        assert_eq!(snap.frames_sent, 2);
        assert_eq!(snap.peer_errors, 0);
    }

    #[test]
    fn peer_counts_only_its_slice() {
        let ds = dataset();
        let n = ds.num_rows() as u64;
        // Pretend this peer holds union rows [n, 2n) of a 2n-row union.
        let mut pipe = Pipe::scripted(&[
            hello("t"),
            Frame::QuerySpec(QuerySpecFrame {
                seed: 7,
                population: 2 * n,
                base: 0,
                shard_start: n,
                shard_end: 2 * n,
            }),
            Frame::GrowDelta(GrowDelta { m_target: 100, target: Some(0), live: vec![1, 2] }),
            Frame::Result(ResultFrame { sampled: 100 }),
        ]);
        let stats = ClusterStats::new();
        let resolve = |_: &str| Some(Arc::clone(&ds));
        assert_eq!(serve_connection(&mut pipe, &resolve, &stats), SessionEnd::Closed);
        let Frame::CountMerge(c) = &pipe.replies()[1] else { panic!("expected CountMerge") };
        let counts = c.clone().into_counts().unwrap();
        // Replay the same global shuffle to predict how many of the 100
        // sampled union rows land in [n, 2n).
        let mut shuffle = PrefixShuffle::new(2 * n as usize, 7);
        let expect = shuffle.grow_to(100).iter().filter(|&&r| (r as u64) >= n).count() as u64;
        assert!(expect > 0, "degenerate test: no sampled row hit the slice");
        assert_eq!(counts.target.unwrap().total(), expect);
        for (cs, js) in counts.attrs.iter().zip(&counts.joints) {
            assert_eq!(cs.total(), expect);
            assert_eq!(js.total(), expect);
        }
    }

    #[test]
    fn unknown_dataset_and_bad_order_get_error_frames() {
        let ds = dataset();
        let stats = ClusterStats::new();
        let mut pipe = Pipe::scripted(&[hello("missing")]);
        let resolve = |name: &str| (name == "t").then(|| Arc::clone(&ds));
        let SessionEnd::Error(msg) = serve_connection(&mut pipe, &resolve, &stats) else {
            panic!("expected an error end");
        };
        assert!(msg.contains("missing"), "{msg}");
        let Frame::Error(e) = &pipe.replies()[0] else { panic!("expected Error frame") };
        assert_eq!(e.message, msg);

        // A GrowDelta before any QuerySpec is a protocol violation.
        let mut pipe = Pipe::scripted(&[
            hello("t"),
            Frame::GrowDelta(GrowDelta { m_target: 8, target: None, live: vec![0] }),
        ]);
        let SessionEnd::Error(msg) = serve_connection(&mut pipe, &resolve, &stats) else {
            panic!("expected an error end");
        };
        assert!(msg.contains("QuerySpec"), "{msg}");
    }

    #[test]
    fn mismatched_shard_range_is_rejected() {
        let ds = dataset();
        let stats = ClusterStats::new();
        let resolve = |_: &str| Some(Arc::clone(&ds));
        let mut pipe = Pipe::scripted(&[
            hello("t"),
            Frame::QuerySpec(QuerySpecFrame {
                seed: 1,
                population: 10,
                base: 0,
                shard_start: 0,
                shard_end: 10, // but the dataset holds 500 rows
            }),
        ]);
        let SessionEnd::Error(msg) = serve_connection(&mut pipe, &resolve, &stats) else {
            panic!("expected an error end");
        };
        assert!(msg.contains("holds 500 rows"), "{msg}");
    }
}
