//! swope-cluster: the wire layer of SWOPE's shard-parallel scatter-gather.
//!
//! `swope_core::shard` proves that the adaptive loops stay bitwise-exact
//! when each doubling iteration's counting is split across disjoint row
//! shards and merged as pure integer histograms. This crate carries that
//! protocol over TCP:
//!
//! * [`frame`] — the dependency-free binary format: length-prefixed,
//!   CRC32-trailed typed frames (`Hello`, `QuerySpec`, `GrowDelta`,
//!   `CountMerge`, `Result`, `Error`), sniffable from HTTP by the
//!   leading `SWPC` magic.
//! * [`peer`] — the shard-server side: answer counting work over a
//!   resident dataset slice, replaying the query's global sample.
//! * [`coordinator`] — [`RemoteShardSource`], a
//!   [`swope_core::ShardTransport`] whose shards are remote peers, with
//!   explicit connect/read timeouts so dead peers degrade to one-line
//!   errors instead of hung workers.
//! * [`stats`] — process-wide `swope_cluster_*` counters.
//!
//! The peers' slices are laid end to end in configuration order to form
//! the union population, so a coordinator query over peers holding rows
//! `[0, a)` and `[a, n)` returns byte-for-byte what a single box holding
//! all `n` rows would — the property the server's cluster smoke test
//! diffs for.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod coordinator;
pub mod frame;
pub mod peer;
pub mod stats;

pub use coordinator::{probe, ClusterProbe, PeerPool, PeerTimeouts, RemoteShardSource};
pub use frame::{Frame, FrameError, MAGIC, PROTOCOL_VERSION};
pub use peer::{serve_connection, DatasetResolver, SessionEnd};
pub use stats::{ClusterSnapshot, ClusterStats};
