//! Integration tests for the SWOPE workspace live in `tests/tests/`.
//! This library crate is intentionally empty.
