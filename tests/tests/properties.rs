//! Randomized property tests over the cross-crate invariants the SWOPE
//! analysis rests on.
//!
//! These use the workspace's own deterministic RNG
//! ([`swope_sampling::rng::Xoshiro256pp`]) in fixed-seed loops instead of
//! an external property-testing framework, so every run explores exactly
//! the same cases and a failure message always pins down the case index.

use swope_columnar::{Column, Dataset, Field, Schema};
use swope_estimate::bounds::{bias, entropy_bounds, lambda, mi_bounds};
use swope_estimate::entropy::{column_entropy, entropy_from_counts, EntropyCounter};
use swope_estimate::joint::{joint_entropy, mutual_information, JointEntropyCounter};
use swope_sampling::rng::Xoshiro256pp;
use swope_sampling::{PrefixShuffle, Sampler};

const CASES: usize = 128;

fn rng(label: u64) -> Xoshiro256pp {
    Xoshiro256pp::seed_from_u64(0x51F7_0000 ^ label)
}

fn random_codes(r: &mut Xoshiro256pp, len_range: (usize, usize), support: u32) -> Vec<u32> {
    let (lo, hi) = len_range;
    let len = lo + r.next_below((hi - lo + 1) as u64) as usize;
    (0..len).map(|_| r.next_below(support as u64) as u32).collect()
}

/// The incremental accumulator must track from-scratch recomputation for
/// every update stream.
#[test]
fn accumulator_matches_recompute() {
    let mut r = rng(1);
    for case in 0..CASES {
        let codes = random_codes(&mut r, (1, 500), 40);
        let mut c = EntropyCounter::new(40);
        for &code in &codes {
            c.add(code);
        }
        let drift = (c.entropy() - c.entropy_recomputed()).abs();
        assert!(drift < 1e-9, "case {case}: drift {drift}");
    }
}

/// Entropy is within [0, log2(observed distinct)] for any counts.
#[test]
fn entropy_range() {
    let mut r = rng(2);
    for case in 0..CASES {
        let len = 1 + r.next_below(64) as usize;
        let counts: Vec<u64> = (0..len).map(|_| r.next_below(1000)).collect();
        let h = entropy_from_counts(&counts);
        let k = counts.iter().filter(|&&c| c > 0).count();
        assert!(h >= 0.0, "case {case}");
        if k > 0 {
            assert!(h <= (k as f64).log2() + 1e-9, "case {case}: h={h} k={k}");
        }
    }
}

/// Joint-entropy chain inequalities: max(H(a), H(b)) <= H(a,b) <= H(a)+H(b),
/// hence 0 <= I(a,b) <= min(H(a), H(b)).
#[test]
fn joint_entropy_chain() {
    let mut r = rng(3);
    for case in 0..CASES {
        let codes_a = random_codes(&mut r, (10, 200), 6);
        let shift = r.next_below(6) as u32;
        let mix = r.next_below(2);
        let codes_b: Vec<u32> = codes_a
            .iter()
            .enumerate()
            .map(|(i, &a)| if mix == 0 { (a + shift) % 6 } else { (i as u32) % 6 })
            .collect();
        let a = Column::new(codes_a, 6).unwrap();
        let b = Column::new(codes_b, 6).unwrap();
        let (ha, hb) = (column_entropy(&a), column_entropy(&b));
        let hab = joint_entropy(&a, &b);
        assert!(hab >= ha.max(hb) - 1e-9, "case {case}: hab={hab} ha={ha} hb={hb}");
        assert!(hab <= ha + hb + 1e-9, "case {case}");
        let mi = mutual_information(&a, &b);
        assert!(mi >= 0.0, "case {case}");
        assert!(mi <= ha.min(hb) + 1e-9, "case {case}");
    }
}

/// MI is symmetric.
#[test]
fn mi_symmetry() {
    let mut r = rng(4);
    for case in 0..CASES {
        let codes_a = random_codes(&mut r, (5, 150), 5);
        let seed = 1 + r.next_below(99) as u32;
        let n = codes_a.len();
        let codes_b: Vec<u32> = (0..n).map(|i| (i as u32).wrapping_mul(seed) % 5).collect();
        let a = Column::new(codes_a, 5).unwrap();
        let b = Column::new(codes_b, 5).unwrap();
        let gap = (mutual_information(&a, &b) - mutual_information(&b, &a)).abs();
        assert!(gap < 1e-9, "case {case}: asymmetry {gap}");
    }
}

/// The interval identity H̄ − H̲ = 2λ + b(α) when the lower clamp is
/// disengaged, and width always <= 2λ + b(α).
#[test]
fn entropy_bound_width_identity() {
    let mut r = rng(5);
    for case in 0..CASES {
        let m = 2 + r.next_below(10_000 - 2);
        let n = m + 1 + r.next_below(1_000_000);
        let u = 1 + r.next_below(999);
        let h_s = r.next_f64() * 10.0;
        let p = 10f64.powi(-(1 + r.next_below(11) as i32));
        let b = entropy_bounds(h_s, m, n, u, p);
        let full = 2.0 * b.lambda + b.bias;
        assert!(b.width() <= full + 1e-9, "case {case}");
        if b.lower > 0.0 {
            assert!((b.width() - full).abs() < 1e-9, "case {case}");
        }
        assert!(b.lower <= h_s + 1e-12, "case {case}");
        assert!(b.upper >= h_s - 1e-12, "case {case}");
    }
}

/// λ and b(α) shrink monotonically in the sample size.
#[test]
fn radii_monotone_in_m() {
    let mut r = rng(6);
    let n = 1u64 << 22;
    let p = 1e-8;
    for case in 0..CASES {
        let m = 2 + r.next_below(100_000 - 2);
        let u = 2 + r.next_below(998);
        if 2 * m >= n {
            continue;
        }
        assert!(lambda(2 * m, n, p) <= lambda(m, n, p) + 1e-12, "case {case}");
        assert!(bias(u, 2 * m, n) <= bias(u, m, n) + 1e-12, "case {case}");
    }
}

/// MI bounds bracket the sample MI and collapse at full sample.
#[test]
fn mi_bounds_bracket() {
    let mut r = rng(7);
    for case in 0..CASES {
        let h_t = r.next_f64() * 8.0;
        let h_a = r.next_f64() * 8.0;
        let excess = r.next_f64();
        let m = 2 + r.next_below(998);
        // Every 8th case exercises the full-sample collapse.
        let n = if case % 8 == 0 { m } else { m + r.next_below(100_000) };
        // Construct a consistent joint entropy: max <= h_ta <= h_t+h_a.
        let h_ta = h_t.max(h_a) + excess * h_t.min(h_a);
        let b = mi_bounds(h_t, h_a, h_ta, 50, 50, m, n, 1e-6);
        assert!(b.lower <= b.sample_mi + 1e-9, "case {case}");
        assert!(b.upper >= b.sample_mi - 1e-9, "case {case}");
        if m == n {
            assert!((b.upper - b.lower).abs() < 1e-9, "case {case}");
        }
    }
}

/// Any shuffle prefix is a duplicate-free subset of 0..N, and growing
/// never rewrites the existing prefix.
#[test]
fn shuffle_prefix_invariants() {
    let mut r = rng(8);
    for case in 0..CASES {
        let n = 1 + r.next_below(2000) as usize;
        let seed = r.next_below(1000);
        let steps = 1 + r.next_below(5) as usize;
        let mut s = PrefixShuffle::new(n, seed);
        let mut previous: Vec<u32> = Vec::new();
        let mut target = 0usize;
        for _ in 0..steps {
            target += 1 + r.next_below(499) as usize;
            s.grow_to(target);
            let rows = s.rows();
            assert!(rows.len() <= n, "case {case}");
            assert_eq!(&rows[..previous.len()], previous.as_slice(), "case {case}");
            let unique: std::collections::HashSet<_> = rows.iter().collect();
            assert_eq!(unique.len(), rows.len(), "case {case}: duplicate row");
            assert!(rows.iter().all(|&row| (row as usize) < n), "case {case}");
            previous = rows.to_vec();
        }
    }
}

/// Lemma 3 interval brackets the exact empirical entropy at any sample
/// prefix, for generous failure budgets. (The bound is probabilistic;
/// p = 1e-9 makes a violation across 128 fixed cases astronomically
/// unlikely, so a failure here means a real math bug.)
#[test]
fn bounds_bracket_exact_entropy() {
    let mut r = rng(9);
    for case in 0..CASES {
        let codes = random_codes(&mut r, (64, 800), 16);
        let prefix_frac = 0.1 + 0.9 * r.next_f64();
        let seed = r.next_below(100);
        let n = codes.len();
        let column = Column::new(codes, 16).unwrap();
        let exact = column_entropy(&column);
        let mut sampler = PrefixShuffle::new(n, seed);
        let m = ((n as f64 * prefix_frac) as usize).clamp(2, n);
        let rows = sampler.grow_to(m).to_vec();
        let mut counter = EntropyCounter::new(16);
        for &row in &rows {
            counter.add(column.code(row as usize));
        }
        let b = entropy_bounds(counter.entropy(), m as u64, n as u64, 16, 1e-9);
        assert!(b.lower <= exact + 1e-9, "case {case}: lower {} > exact {exact}", b.lower);
        assert!(b.upper >= exact - 1e-9, "case {case}: upper {} < exact {exact}", b.upper);
    }
}

/// Joint counter tracks its recompute under arbitrary pair streams.
#[test]
fn joint_accumulator_matches_recompute() {
    let mut r = rng(10);
    for case in 0..CASES {
        let len = 1 + r.next_below(400) as usize;
        let mut c = JointEntropyCounter::new(12, 9);
        for _ in 0..len {
            c.add(r.next_below(12) as u32, r.next_below(9) as u32);
        }
        let drift = (c.entropy() - c.entropy_recomputed()).abs();
        assert!(drift < 1e-9, "case {case}: drift {drift}");
    }
}

/// Dataset snapshot round-trips arbitrary generated tables.
#[test]
fn snapshot_round_trip() {
    let mut r = rng(11);
    for case in 0..CASES {
        let num_cols = 1 + r.next_below(4) as usize;
        let rows = 1 + r.next_below(49) as usize;
        let columns: Vec<Column> = (0..num_cols)
            .map(|_| {
                let support = 2 + r.next_below(7) as u32;
                let codes = (0..rows).map(|_| r.next_below(support as u64) as u32).collect();
                Column::new(codes, support).unwrap()
            })
            .collect();
        let fields = columns
            .iter()
            .enumerate()
            .map(|(i, c)| Field::new(format!("f{i}"), c.support()))
            .collect();
        let ds = Dataset::new(Schema::new(fields), columns).unwrap();
        let bytes = swope_columnar::snapshot::encode(&ds);
        let back = swope_columnar::snapshot::decode(&bytes).unwrap();
        assert_eq!(back, ds, "case {case}");
    }
}
