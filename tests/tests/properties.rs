//! Property-based tests over the cross-crate invariants the SWOPE
//! analysis rests on.

use proptest::prelude::*;
use swope_columnar::{Column, Dataset, Field, Schema};
use swope_estimate::bounds::{bias, entropy_bounds, lambda, mi_bounds};
use swope_estimate::entropy::{column_entropy, entropy_from_counts, EntropyCounter};
use swope_estimate::joint::{joint_entropy, mutual_information, JointEntropyCounter};
use swope_sampling::{PrefixShuffle, Sampler};

fn column_strategy(max_rows: usize, max_support: u32) -> impl Strategy<Value = Column> {
    (2..=max_support).prop_flat_map(move |u| {
        proptest::collection::vec(0..u, 1..=max_rows)
            .prop_map(move |codes| Column::new(codes, u).unwrap())
    })
}

proptest! {
    /// The incremental accumulator must track from-scratch recomputation
    /// for every update stream.
    #[test]
    fn accumulator_matches_recompute(codes in proptest::collection::vec(0u32..40, 1..500)) {
        let mut c = EntropyCounter::new(40);
        for &code in &codes {
            c.add(code);
        }
        let drift = (c.entropy() - c.entropy_recomputed()).abs();
        prop_assert!(drift < 1e-9, "drift {drift}");
    }

    /// Entropy is within [0, log2(observed distinct)] for any counts.
    #[test]
    fn entropy_range(counts in proptest::collection::vec(0u64..1000, 1..64)) {
        let h = entropy_from_counts(&counts);
        let k = counts.iter().filter(|&&c| c > 0).count();
        prop_assert!(h >= 0.0);
        if k > 0 {
            prop_assert!(h <= (k as f64).log2() + 1e-9, "h={h} k={k}");
        }
    }

    /// Joint-entropy chain inequalities: max(H(a), H(b)) <= H(a,b) <= H(a)+H(b),
    /// hence 0 <= I(a,b) <= min(H(a), H(b)).
    #[test]
    fn joint_entropy_chain(
        codes_a in proptest::collection::vec(0u32..6, 10..200),
        shift in 0u32..6,
        mix in 0u32..2,
    ) {
        let n = codes_a.len();
        let codes_b: Vec<u32> = codes_a
            .iter()
            .enumerate()
            .map(|(i, &a)| if mix == 0 { (a + shift) % 6 } else { (i as u32) % 6 })
            .collect();
        let a = Column::new(codes_a, 6).unwrap();
        let b = Column::new(codes_b, 6).unwrap();
        let (ha, hb) = (column_entropy(&a), column_entropy(&b));
        let hab = joint_entropy(&a, &b);
        prop_assert!(hab >= ha.max(hb) - 1e-9, "hab={hab} ha={ha} hb={hb} n={n}");
        prop_assert!(hab <= ha + hb + 1e-9);
        let mi = mutual_information(&a, &b);
        prop_assert!(mi >= 0.0);
        prop_assert!(mi <= ha.min(hb) + 1e-9);
    }

    /// MI is symmetric.
    #[test]
    fn mi_symmetry(
        codes_a in proptest::collection::vec(0u32..5, 5..150),
        codes_b_seed in 1u32..100,
    ) {
        let n = codes_a.len();
        let codes_b: Vec<u32> = (0..n)
            .map(|i| (i as u32).wrapping_mul(codes_b_seed) % 5)
            .collect();
        let a = Column::new(codes_a, 5).unwrap();
        let b = Column::new(codes_b, 5).unwrap();
        prop_assert!((mutual_information(&a, &b) - mutual_information(&b, &a)).abs() < 1e-9);
    }

    /// The interval identity H̄ − H̲ = 2λ + b(α) when the lower clamp is
    /// disengaged, and width always <= 2λ + b(α).
    #[test]
    fn entropy_bound_width_identity(
        m in 2u64..10_000,
        extra in 1u64..1_000_000,
        u in 1u64..1000,
        h_s in 0.0f64..10.0,
        p_exp in 1u32..12,
    ) {
        let n = m + extra;
        let p = 10f64.powi(-(p_exp as i32));
        let b = entropy_bounds(h_s, m, n, u, p);
        let full = 2.0 * b.lambda + b.bias;
        prop_assert!(b.width() <= full + 1e-9);
        if b.lower > 0.0 {
            prop_assert!((b.width() - full).abs() < 1e-9);
        }
        prop_assert!(b.lower <= h_s + 1e-12);
        prop_assert!(b.upper >= h_s - 1e-12);
    }

    /// λ and b(α) shrink monotonically in the sample size.
    #[test]
    fn radii_monotone_in_m(
        m in 2u64..100_000,
        u in 2u64..1000,
    ) {
        let n = 1u64 << 22;
        let p = 1e-8;
        prop_assume!(2 * m < n);
        prop_assert!(lambda(2 * m, n, p) <= lambda(m, n, p) + 1e-12);
        prop_assert!(bias(u, 2 * m, n) <= bias(u, m, n) + 1e-12);
    }

    /// MI bounds bracket the sample MI and collapse at full sample.
    #[test]
    fn mi_bounds_bracket(
        h_t in 0.0f64..8.0,
        h_a in 0.0f64..8.0,
        excess in 0.0f64..1.0,
        m in 2u64..1000,
        extra in 0u64..100_000,
    ) {
        // Construct a consistent joint entropy: max(h_t,h_a) <= h_ta <= h_t+h_a.
        let h_ta = h_t.max(h_a) + excess * h_t.min(h_a);
        let n = m + extra;
        let b = mi_bounds(h_t, h_a, h_ta, 50, 50, m, n, 1e-6);
        prop_assert!(b.lower <= b.sample_mi + 1e-9);
        prop_assert!(b.upper >= b.sample_mi - 1e-9);
        if m == n {
            prop_assert!((b.upper - b.lower).abs() < 1e-9);
        }
    }

    /// Any shuffle prefix is a duplicate-free subset of 0..N, and growing
    /// never rewrites the existing prefix.
    #[test]
    fn shuffle_prefix_invariants(
        n in 1usize..2000,
        grow_steps in proptest::collection::vec(1usize..500, 1..6),
        seed in 0u64..1000,
    ) {
        let mut s = PrefixShuffle::new(n, seed);
        let mut previous: Vec<u32> = Vec::new();
        let mut target = 0usize;
        for step in grow_steps {
            target += step;
            s.grow_to(target);
            let rows = s.rows();
            prop_assert!(rows.len() <= n);
            prop_assert_eq!(&rows[..previous.len()], previous.as_slice());
            let unique: std::collections::HashSet<_> = rows.iter().collect();
            prop_assert_eq!(unique.len(), rows.len());
            prop_assert!(rows.iter().all(|&r| (r as usize) < n));
            previous = rows.to_vec();
        }
    }

    /// Lemma 3 interval brackets the exact empirical entropy at any
    /// sample prefix, for generous failure budgets. (The bound is
    /// probabilistic; p = 1e-9 makes a violation in 256 proptest cases
    /// astronomically unlikely, so a failure here means a real math bug.)
    #[test]
    fn bounds_bracket_exact_entropy(
        codes in proptest::collection::vec(0u32..16, 64..800),
        prefix_frac in 0.1f64..1.0,
        seed in 0u64..100,
    ) {
        let n = codes.len();
        let column = Column::new(codes, 16).unwrap();
        let exact = column_entropy(&column);
        let mut sampler = PrefixShuffle::new(n, seed);
        let m = ((n as f64 * prefix_frac) as usize).clamp(2, n);
        let rows = sampler.grow_to(m).to_vec();
        let mut counter = EntropyCounter::new(16);
        for &r in &rows {
            counter.add(column.code(r as usize));
        }
        let b = entropy_bounds(counter.entropy(), m as u64, n as u64, 16, 1e-9);
        prop_assert!(b.lower <= exact + 1e-9, "lower {} > exact {exact}", b.lower);
        prop_assert!(b.upper >= exact - 1e-9, "upper {} < exact {exact}", b.upper);
    }

    /// Joint counter tracks its recompute under arbitrary pair streams.
    #[test]
    fn joint_accumulator_matches_recompute(
        pairs in proptest::collection::vec((0u32..12, 0u32..9), 1..400),
    ) {
        let mut c = JointEntropyCounter::new(12, 9);
        for &(a, b) in &pairs {
            c.add(a, b);
        }
        prop_assert!((c.entropy() - c.entropy_recomputed()).abs() < 1e-9);
    }

    /// Dataset snapshot round-trips arbitrary generated tables.
    #[test]
    fn snapshot_round_trip(
        columns in proptest::collection::vec(column_strategy(50, 8), 1..5),
        rows in 1usize..50,
    ) {
        // Truncate all columns to the same length.
        let columns: Vec<Column> = columns
            .into_iter()
            .map(|c| {
                let len = rows.min(c.len());
                Column::new(c.codes()[..len].to_vec(), c.support()).unwrap()
            })
            .collect();
        let min_len = columns.iter().map(Column::len).min().unwrap();
        let columns: Vec<Column> = columns
            .into_iter()
            .map(|c| Column::new(c.codes()[..min_len].to_vec(), c.support()).unwrap())
            .collect();
        let fields = columns
            .iter()
            .enumerate()
            .map(|(i, c)| Field::new(format!("f{i}"), c.support()))
            .collect();
        let ds = Dataset::new(Schema::new(fields), columns).unwrap();
        let bytes = swope_columnar::snapshot::encode(&ds);
        let back = swope_columnar::snapshot::decode(&bytes).unwrap();
        prop_assert_eq!(back, ds);
    }
}
