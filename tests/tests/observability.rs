//! Observer-layer integration: every adaptive loop emits a well-formed
//! event stream, the metrics registry agrees with the per-query
//! statistics, and attaching observers never changes query answers.

use swope_core::{
    entropy_filter, entropy_filter_observed, entropy_profile, entropy_profile_observed,
    entropy_top_k, entropy_top_k_observed, entropy_top_k_scoped_exec, entropy_top_k_sharded_exec,
    mi_filter, mi_filter_observed, mi_profile, mi_profile_observed, mi_top_k, mi_top_k_batch,
    mi_top_k_batch_observed, mi_top_k_observed, Executor, JsonlSink, MetricsRegistry, Scope,
    SwopeConfig,
};
use swope_datagen::{corpus, generate};
use swope_obs::json::Json;
use swope_obs::{
    AttrBounds, Phase, PhaseAccumulator, QueryKind, QueryMeta, QueryObserver, RunStats,
};

fn dataset() -> swope_columnar::Dataset {
    generate(&corpus::tiny(20_000, 12), 0x0B5)
}

fn cfg(seed: u64) -> SwopeConfig {
    SwopeConfig::with_epsilon(0.2).with_seed(seed)
}

/// Runs `f` against an in-memory JSONL sink and returns the parsed lines.
fn capture(f: impl FnOnce(&mut JsonlSink<Vec<u8>>)) -> Vec<Json> {
    let mut sink = JsonlSink::new(Vec::new());
    f(&mut sink);
    let bytes = sink.finish().unwrap();
    let text = String::from_utf8(bytes).unwrap();
    text.lines().map(|l| Json::parse(l).expect(l)).collect()
}

fn event(v: &Json) -> &str {
    v.get("event").and_then(Json::as_str).expect("line without event field")
}

/// Checks the lifecycle shape shared by every loop: one `query_start`
/// first, one `query_end` last, `iterations` iteration events, exactly
/// `candidates` retirements, and only known phase names.
fn assert_stream_shape(events: &[Json], kind: QueryKind, candidates: u64) {
    assert_eq!(event(&events[0]), "query_start");
    assert_eq!(
        events[0].get("kind").unwrap().as_str(),
        Some(kind.name()),
        "query_start kind mismatch"
    );
    let last = events.last().unwrap();
    assert_eq!(event(last), "query_end");
    assert_eq!(events.iter().filter(|e| event(e) == "query_start").count(), 1);
    assert_eq!(events.iter().filter(|e| event(e) == "query_end").count(), 1);

    let iterations = last.get("iterations").unwrap().as_u64().unwrap();
    let iter_events = events.iter().filter(|e| event(e) == "iteration").count() as u64;
    assert_eq!(iter_events, iterations, "one iteration event per doubling round");

    let retired = events.iter().filter(|e| event(e) == "attr_retired").count() as u64;
    assert_eq!(retired, candidates, "every candidate retires exactly once");

    let phase_names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
    for e in events.iter().filter(|e| event(e) == "phase") {
        let name = e.get("phase").unwrap().as_str().unwrap();
        assert!(phase_names.contains(&name), "unknown phase {name}");
    }
}

#[test]
fn jsonl_stream_is_parseable_for_all_six_loops() {
    let ds = dataset();
    let h = ds.num_attrs() as u64;
    let target = 3;
    let batch_targets = [0usize, 5];

    let events = capture(|s| {
        entropy_top_k_observed(&ds, 4, &cfg(1), s).unwrap();
    });
    assert_stream_shape(&events, QueryKind::EntropyTopK, h);

    let events = capture(|s| {
        entropy_filter_observed(&ds, 1.5, &cfg(2), s).unwrap();
    });
    assert_stream_shape(&events, QueryKind::EntropyFilter, h);

    let events = capture(|s| {
        entropy_profile_observed(&ds, 0.25, &cfg(3), s).unwrap();
    });
    assert_stream_shape(&events, QueryKind::EntropyProfile, h);

    let events = capture(|s| {
        mi_top_k_observed(&ds, target, 4, &cfg(4), s).unwrap();
    });
    assert_stream_shape(&events, QueryKind::MiTopK, h - 1);

    let events = capture(|s| {
        mi_filter_observed(&ds, target, 0.05, &cfg(5), s).unwrap();
    });
    assert_stream_shape(&events, QueryKind::MiFilter, h - 1);

    let events = capture(|s| {
        mi_profile_observed(&ds, target, 0.1, &cfg(6), s).unwrap();
    });
    assert_stream_shape(&events, QueryKind::MiProfile, h - 1);

    let events = capture(|s| {
        mi_top_k_batch_observed(&ds, &batch_targets, 3, &cfg(7), s).unwrap();
    });
    assert_stream_shape(&events, QueryKind::MiTopKBatch, batch_targets.len() as u64 * (h - 1));
}

#[test]
fn jsonl_query_end_matches_returned_stats() {
    let ds = dataset();
    let mut sink = JsonlSink::new(Vec::new());
    let res = entropy_top_k_observed(&ds, 3, &cfg(11), &mut sink).unwrap();
    let bytes = sink.finish().unwrap();
    let text = String::from_utf8(bytes).unwrap();
    let end =
        text.lines().map(|l| Json::parse(l).unwrap()).find(|v| event(v) == "query_end").unwrap();
    assert_eq!(end.get("sample_size").unwrap().as_u64(), Some(res.stats.sample_size as u64));
    assert_eq!(end.get("iterations").unwrap().as_u64(), Some(res.stats.iterations as u64));
    assert_eq!(end.get("rows_scanned").unwrap().as_u64(), Some(res.stats.rows_scanned));
    assert_eq!(end.get("converged_early").unwrap().as_bool(), Some(res.stats.converged_early));
}

#[test]
fn metrics_registry_totals_match_query_stats() {
    let ds = dataset();
    let registry = MetricsRegistry::new();
    let h = ds.num_attrs() as u64;

    let topk = entropy_top_k_observed(&ds, 4, &cfg(21), &mut &registry).unwrap();
    let filt = entropy_filter_observed(&ds, 1.5, &cfg(22), &mut &registry).unwrap();
    let mi = mi_top_k_observed(&ds, 2, 3, &cfg(23), &mut &registry).unwrap();

    assert_eq!(registry.queries_all_kinds(), 3);
    assert_eq!(registry.queries_total(QueryKind::EntropyTopK), 1);
    assert_eq!(registry.queries_total(QueryKind::EntropyFilter), 1);
    assert_eq!(registry.queries_total(QueryKind::MiTopK), 1);
    assert_eq!(registry.queries_total(QueryKind::MiFilter), 0);

    let stats = [&topk.stats, &filt.stats, &mi.stats];
    assert_eq!(registry.rows_scanned_total(), stats.iter().map(|s| s.rows_scanned).sum::<u64>());
    assert_eq!(registry.iterations_total(), stats.iter().map(|s| s.iterations as u64).sum::<u64>());
    assert_eq!(
        registry.sample_rows_total(),
        stats.iter().map(|s| s.sample_size as u64).sum::<u64>()
    );
    assert_eq!(
        registry.converged_early_total(),
        stats.iter().filter(|s| s.converged_early).count() as u64
    );
    // Two entropy queries retire h candidates each; the MI query h-1.
    assert_eq!(registry.attrs_retired_total(), 2 * h + (h - 1));
    assert_eq!(registry.retirement_iterations().count(), 2 * h + (h - 1));

    // Phase timing was recorded for a live registry (enabled() is true),
    // and both renderings include the counters.
    let total_phase: u64 = Phase::ALL.iter().map(|&p| registry.phase_nanos_total(p)).sum();
    assert!(total_phase > 0, "phase timers should have fired");
    let table = registry.render_table();
    assert!(table.contains("rows_scanned_total"), "{table}");
    let prom = registry.render_prometheus();
    assert!(prom.contains("swope_queries_total"), "{prom}");
}

#[test]
fn metrics_registry_totals_survive_concurrent_hammering() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const THREADS: u64 = 8;
    const ROUNDS: u64 = 400;

    let registry = Arc::new(MetricsRegistry::new());
    let stop = Arc::new(AtomicBool::new(false));

    // A reader renders both exposition formats for the whole run; a torn
    // read or panic here means rendering is not safe against live writers.
    let reader = {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut renders = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let prom = registry.render_prometheus();
                assert!(prom.contains("swope_queries_total"), "{prom}");
                let table = registry.render_table();
                assert!(table.contains("rows_scanned_total"), "{table}");
                renders += 1;
            }
            renders
        })
    };

    // Writers drive every observer hook through the `&MetricsRegistry`
    // impl, each thread with magnitudes derived from its index so any
    // lost update shows up as a total mismatch below.
    let writers: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    let mut obs = &*registry;
                    obs.query_start(&QueryMeta {
                        kind: QueryKind::EntropyTopK,
                        num_attrs: 4,
                        num_rows: 1000,
                        epsilon: 0.1,
                        threads: 1,
                    });
                    for phase in Phase::ALL {
                        obs.phase(phase, round as usize, t + 1);
                    }
                    obs.attr_retired(
                        t as usize,
                        (round % 7 + 1) as usize,
                        AttrBounds { lower: 0.0, upper: 1.0 },
                    );
                    obs.query_end(&RunStats {
                        sample_size: (t + 1) as usize,
                        iterations: (round % 5 + 1) as usize,
                        rows_scanned: (t + 1) * 10,
                        converged_early: round % 2 == 0,
                    });
                }
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let renders = reader.join().unwrap();
    assert!(renders > 0, "reader never got a render in");

    // Every total equals the sum of the per-thread contributions.
    let thread_sum: u64 = (1..=THREADS).sum(); // Σ (t+1)
    assert_eq!(registry.queries_total(QueryKind::EntropyTopK), THREADS * ROUNDS);
    assert_eq!(registry.queries_all_kinds(), THREADS * ROUNDS);
    assert_eq!(registry.attrs_retired_total(), THREADS * ROUNDS);
    assert_eq!(registry.sample_rows_total(), ROUNDS * thread_sum);
    assert_eq!(registry.rows_scanned_total(), ROUNDS * thread_sum * 10);
    assert_eq!(registry.converged_early_total(), THREADS * ROUNDS / 2);
    let per_round_iterations: u64 = (0..ROUNDS).map(|r| r % 5 + 1).sum();
    assert_eq!(registry.iterations_total(), THREADS * per_round_iterations);
    for phase in Phase::ALL {
        assert_eq!(registry.phase_nanos_total(phase), ROUNDS * thread_sum);
    }
    assert_eq!(registry.retirement_iterations().count(), THREADS * ROUNDS);
    assert_eq!(registry.iterations_per_query().count(), THREADS * ROUNDS);
}

#[test]
fn observers_never_change_answers() {
    let ds = dataset();
    let target = 4;
    let targets = [1usize, 6];

    // Each pair runs the same seed with and without observation; results
    // must be bitwise identical (PartialEq covers every field, including
    // the full iteration trace).
    let registry = MetricsRegistry::new();
    let mut acc = PhaseAccumulator::new();

    let plain = entropy_top_k(&ds, 4, &cfg(31)).unwrap();
    let seen = entropy_top_k_observed(&ds, 4, &cfg(31), &mut &registry).unwrap();
    assert_eq!(plain, seen);

    let plain = entropy_filter(&ds, 1.5, &cfg(32)).unwrap();
    let seen = entropy_filter_observed(&ds, 1.5, &cfg(32), &mut acc).unwrap();
    assert_eq!(plain, seen);

    let plain = entropy_profile(&ds, 0.25, &cfg(33)).unwrap();
    let seen = entropy_profile_observed(&ds, 0.25, &cfg(33), &mut &registry).unwrap();
    assert_eq!(plain, seen);

    let plain = mi_top_k(&ds, target, 3, &cfg(34)).unwrap();
    let seen = mi_top_k_observed(&ds, target, 3, &cfg(34), &mut &registry).unwrap();
    assert_eq!(plain, seen);

    let plain = mi_filter(&ds, target, 0.05, &cfg(35)).unwrap();
    let seen = mi_filter_observed(&ds, target, 0.05, &cfg(35), &mut &registry).unwrap();
    assert_eq!(plain, seen);

    let plain = mi_profile(&ds, target, 0.1, &cfg(36)).unwrap();
    let seen = mi_profile_observed(&ds, target, 0.1, &cfg(36), &mut &registry).unwrap();
    assert_eq!(plain, seen);

    let plain = mi_top_k_batch(&ds, &targets, 3, &cfg(37)).unwrap();
    let seen = mi_top_k_batch_observed(&ds, &targets, 3, &cfg(37), &mut &registry).unwrap();
    assert_eq!(plain, seen);

    // The filter pair ran through the accumulator: phases were timed.
    assert!(acc.total_nanos() > 0);
}

#[test]
fn observers_never_change_answers_multithreaded() {
    let ds = dataset();
    let threaded = |seed: u64| SwopeConfig::with_epsilon(0.2).with_seed(seed).with_threads(4);

    let registry = MetricsRegistry::new();
    let plain = entropy_top_k(&ds, 4, &threaded(41)).unwrap();
    let seen = entropy_top_k_observed(&ds, 4, &threaded(41), &mut &registry).unwrap();
    assert_eq!(plain, seen);

    let serial = entropy_top_k(&ds, 4, &cfg(41)).unwrap();
    assert_eq!(plain, serial, "thread count must not change results");

    let plain = mi_top_k_batch(&ds, &[0, 5], 3, &threaded(42)).unwrap();
    let seen = mi_top_k_batch_observed(&ds, &[0, 5], 3, &threaded(42), &mut &registry).unwrap();
    assert_eq!(plain, seen);
}

#[test]
fn phase_accumulator_covers_every_phase() {
    let ds = dataset();
    let mut acc = PhaseAccumulator::new();
    entropy_top_k_observed(&ds, 4, &cfg(51), &mut acc).unwrap();
    // The store_sketch phase (scope resolution) only fires on scoped
    // queries; a sub-range scope covers it.
    let scope = Scope::range(100, ds.num_rows() - 100);
    entropy_top_k_scoped_exec(&ds, 4, &scope, None, &cfg(51), &mut acc, &Executor::new(1)).unwrap();
    // The shard_merge phase only fires on sharded loops.
    entropy_top_k_sharded_exec(&ds, 4, 2, &cfg(51), &mut acc, &Executor::new(1)).unwrap();
    for p in Phase::ALL {
        assert!(acc.calls[p.index()] > 0, "phase {} never reported", p.name());
    }
    assert_eq!(acc.total_nanos(), acc.nanos.iter().sum::<u64>());
}
