//! Baselines must return exact answers (up to their p_f budget), and
//! SWOPE's cost advantage over them must materialize on the corpus.

use swope_baselines::{
    entropy_filter_exact_sampling, entropy_rank_top_k, exact_entropy_filter, exact_entropy_top_k,
    exact_mi_filter, exact_mi_top_k, mi_filter_exact_sampling, mi_rank_top_k,
};
use swope_core::{entropy_filter, entropy_top_k, SwopeConfig};
use swope_datagen::{corpus, generate};

#[test]
fn entropy_rank_matches_exact_across_seeds() {
    let ds = generate(&corpus::tiny(40_000, 25), 201);
    for seed in [1u64, 2, 3, 4, 5] {
        for k in [1usize, 4, 8] {
            let cfg = SwopeConfig::default().with_seed(seed);
            let rank = entropy_rank_top_k(&ds, k, &cfg).unwrap();
            let exact = exact_entropy_top_k(&ds, k).unwrap();
            let mut a = rank.attr_indices();
            let mut b = exact.attr_indices();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "seed {seed} k {k}");
        }
    }
}

#[test]
fn entropy_filter_baseline_matches_exact_across_seeds() {
    let ds = generate(&corpus::tiny(40_000, 25), 203);
    for seed in [1u64, 2, 3] {
        for eta in [1.0, 2.5, 4.0] {
            let cfg = SwopeConfig::default().with_seed(seed);
            let sampled = entropy_filter_exact_sampling(&ds, eta, &cfg).unwrap();
            let exact = exact_entropy_filter(&ds, eta).unwrap();
            let mut a = sampled.attr_indices();
            let mut b = exact.attr_indices();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "seed {seed} eta {eta}");
        }
    }
}

#[test]
fn mi_baselines_match_exact() {
    let ds = generate(&corpus::tiny(30_000, 20), 205);
    let cfg = SwopeConfig::default();
    for target in [0usize, 3] {
        let rank = mi_rank_top_k(&ds, target, 3, &cfg).unwrap();
        let exact = exact_mi_top_k(&ds, target, 3).unwrap();
        let mut a = rank.attr_indices();
        let mut b = exact.attr_indices();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "target {target}");

        let sampled = mi_filter_exact_sampling(&ds, target, 0.2, &cfg).unwrap();
        let exact_f = exact_mi_filter(&ds, target, 0.2).unwrap();
        let mut a = sampled.attr_indices();
        let mut b = exact_f.attr_indices();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "target {target} filter");
    }
}

#[test]
fn swope_does_no_more_work_than_rank_on_hard_instances() {
    // Many near-tied columns below the top: the regime where EntropyRank's
    // Δ-gap dependence hurts and SWOPE's relative rule wins.
    use swope_columnar::{Column, Dataset, Field, Schema};
    let n = 120_000usize;
    let mut fields = Vec::new();
    let mut columns = Vec::new();
    fields.push(Field::new("top", 256));
    columns.push(Column::new((0..n).map(|r| r as u32 % 256).collect(), 256).unwrap());
    for (i, u) in [64u32, 64, 63, 63, 62].iter().enumerate() {
        fields.push(Field::new(format!("tied{i}"), *u));
        columns.push(
            Column::new(
                (0..n)
                    .map(|r| ((r as u32).wrapping_mul(2654435761 + i as u32) >> 16) % u)
                    .collect(),
                *u,
            )
            .unwrap(),
        );
    }
    let ds = Dataset::new(Schema::new(fields), columns).unwrap();
    let cfg = SwopeConfig::with_epsilon(0.1).with_seed(7);
    let swope = entropy_top_k(&ds, 2, &cfg).unwrap();
    let rank = entropy_rank_top_k(&ds, 2, &cfg).unwrap();
    assert!(
        swope.stats.rows_scanned <= rank.stats.rows_scanned,
        "swope {:?} vs rank {:?}",
        swope.stats,
        rank.stats
    );
}

#[test]
fn swope_filter_does_no_more_work_than_baseline_near_threshold() {
    // Scores sitting almost exactly at η: EntropyFilter must nearly scan
    // everything, SWOPE's ε-band lets it stop.
    use swope_columnar::{Column, Dataset, Field, Schema};
    let n = 120_000usize;
    // Entropy of u=16 cyclic column is exactly 4 bits; query η = 4.
    let fields = vec![Field::new("at_threshold", 16), Field::new("wide", 256)];
    let columns = vec![
        Column::new((0..n).map(|r| r as u32 % 16).collect(), 16).unwrap(),
        Column::new((0..n).map(|r| r as u32 % 256).collect(), 256).unwrap(),
    ];
    let ds = Dataset::new(Schema::new(fields), columns).unwrap();
    let cfg = SwopeConfig::with_epsilon(0.05).with_seed(7);
    let swope = entropy_filter(&ds, 4.0, &cfg).unwrap();
    let baseline = entropy_filter_exact_sampling(&ds, 4.0, &cfg).unwrap();
    assert!(
        swope.stats.rows_scanned < baseline.stats.rows_scanned,
        "swope {:?} vs baseline {:?}",
        swope.stats,
        baseline.stats
    );
    // The baseline is forced to the full scan by the exact-threshold column.
    assert_eq!(baseline.stats.sample_size, n);
}
