//! End-to-end integration: generated corpus -> SWOPE queries -> checked
//! against exact answers and the paper's approximation contracts.

use swope_baselines::{exact_entropy_scores, exact_mi_scores};
use swope_core::{entropy_filter, entropy_top_k, mi_filter, mi_top_k, SwopeConfig};
use swope_datagen::{corpus, generate};

fn order_desc(scores: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
    order
}

#[test]
fn entropy_topk_satisfies_definition5_on_corpus() {
    let ds = generate(&corpus::tiny(50_000, 30), 101);
    let exact = exact_entropy_scores(&ds);
    let order = order_desc(&exact);
    for epsilon in [0.05, 0.1, 0.3] {
        for k in [1usize, 3, 7] {
            let cfg = SwopeConfig::with_epsilon(epsilon).with_seed(k as u64);
            let res = entropy_top_k(&ds, k, &cfg).unwrap();
            assert_eq!(res.top.len(), k);
            for (i, s) in res.top.iter().enumerate() {
                // Definition 5 (i): estimate >= (1-ε) * exact score.
                assert!(
                    s.estimate >= (1.0 - epsilon) * exact[s.attr] - 1e-9,
                    "ε={epsilon} k={k} pos {i}: estimate {} < (1-ε)·{}",
                    s.estimate,
                    exact[s.attr]
                );
                // Definition 5 (ii): exact score >= (1-ε) * i-th best.
                let ith_best = exact[order[i]];
                assert!(
                    exact[s.attr] >= (1.0 - epsilon) * ith_best - 1e-9,
                    "ε={epsilon} k={k} pos {i}: score {} < (1-ε)·{ith_best}",
                    exact[s.attr]
                );
            }
        }
    }
}

#[test]
fn entropy_filter_satisfies_definition6_on_corpus() {
    let ds = generate(&corpus::tiny(50_000, 30), 103);
    let exact = exact_entropy_scores(&ds);
    for epsilon in [0.05, 0.2] {
        for eta in [0.5f64, 2.0, 4.0] {
            let cfg = SwopeConfig::with_epsilon(epsilon).with_seed(eta.to_bits());
            let res = entropy_filter(&ds, eta, &cfg).unwrap();
            for (attr, &score) in exact.iter().enumerate() {
                let included = res.contains(attr);
                if score >= (1.0 + epsilon) * eta {
                    assert!(included, "ε={epsilon} η={eta}: attr {attr} (H={score}) missing");
                }
                if score < (1.0 - epsilon) * eta {
                    assert!(!included, "ε={epsilon} η={eta}: attr {attr} (H={score}) present");
                }
            }
        }
    }
}

#[test]
fn mi_topk_satisfies_definition5_on_corpus() {
    let ds = generate(&corpus::tiny(40_000, 25), 105);
    let epsilon = 0.5;
    for target in [0usize, 7, 13] {
        let exact = exact_mi_scores(&ds, target);
        let order: Vec<usize> = order_desc(&exact).into_iter().filter(|&a| a != target).collect();
        let cfg = SwopeConfig::with_epsilon(epsilon).with_seed(target as u64);
        let res = mi_top_k(&ds, target, 4, &cfg).unwrap();
        for (i, s) in res.top.iter().enumerate() {
            assert_ne!(s.attr, target);
            assert!(
                s.estimate >= (1.0 - epsilon) * exact[s.attr] - 1e-9,
                "target {target} pos {i}: estimate {} vs exact {}",
                s.estimate,
                exact[s.attr]
            );
            let ith_best = exact[order[i]];
            assert!(
                exact[s.attr] >= (1.0 - epsilon) * ith_best - 1e-9,
                "target {target} pos {i}: {} < (1-ε)·{ith_best}",
                exact[s.attr]
            );
        }
    }
}

#[test]
fn mi_filter_satisfies_definition6_on_corpus() {
    let ds = generate(&corpus::tiny(40_000, 25), 107);
    let epsilon = 0.5;
    for target in [0usize, 5] {
        let exact = exact_mi_scores(&ds, target);
        for eta in [0.1f64, 0.3] {
            let cfg = SwopeConfig::with_epsilon(epsilon).with_seed(eta.to_bits());
            let res = mi_filter(&ds, target, eta, &cfg).unwrap();
            for attr in (0..ds.num_attrs()).filter(|&a| a != target) {
                let score = exact[attr];
                let included = res.contains(attr);
                if score >= (1.0 + epsilon) * eta {
                    assert!(included, "target {target} η={eta}: attr {attr} (I={score}) missing");
                }
                if score < (1.0 - epsilon) * eta {
                    assert!(!included, "target {target} η={eta}: attr {attr} (I={score}) present");
                }
            }
        }
    }
}

#[test]
fn all_four_census_profiles_run_all_queries() {
    for profile in corpus::all(0.0003) {
        let name = profile.name.clone();
        let ds = generate(&profile, 1);
        let cfg = SwopeConfig::default();
        let topk = entropy_top_k(&ds, 10, &cfg).unwrap();
        assert_eq!(topk.top.len(), 10, "{name}");
        let filt = entropy_filter(&ds, 2.0, &cfg).unwrap();
        assert!(filt.accepted.len() <= ds.num_attrs(), "{name}");
        let mi = mi_top_k(&ds, 0, 10, &SwopeConfig::with_epsilon(0.5)).unwrap();
        assert_eq!(mi.top.len(), 10, "{name}");
        let mif = mi_filter(&ds, 0, 0.3, &SwopeConfig::with_epsilon(0.5)).unwrap();
        assert!(mif.accepted.len() < ds.num_attrs(), "{name}");
    }
}

#[test]
fn queries_are_reproducible_across_runs() {
    let ds = generate(&corpus::tiny(30_000, 20), 109);
    let cfg = SwopeConfig::with_epsilon(0.1).with_seed(5);
    assert_eq!(entropy_top_k(&ds, 5, &cfg).unwrap(), entropy_top_k(&ds, 5, &cfg).unwrap());
    assert_eq!(entropy_filter(&ds, 1.5, &cfg).unwrap(), entropy_filter(&ds, 1.5, &cfg).unwrap());
    let mi_cfg = SwopeConfig::with_epsilon(0.5).with_seed(5);
    assert_eq!(mi_top_k(&ds, 2, 3, &mi_cfg).unwrap(), mi_top_k(&ds, 2, 3, &mi_cfg).unwrap());
}

#[test]
fn threads_do_not_change_any_result() {
    let ds = generate(&corpus::tiny(30_000, 20), 111);
    let base = SwopeConfig::with_epsilon(0.1).with_seed(9);
    let threaded = base.clone().with_threads(8);
    assert_eq!(entropy_top_k(&ds, 5, &base).unwrap(), entropy_top_k(&ds, 5, &threaded).unwrap());
    assert_eq!(
        entropy_filter(&ds, 2.0, &base).unwrap(),
        entropy_filter(&ds, 2.0, &threaded).unwrap()
    );
    let mi_base = SwopeConfig::with_epsilon(0.5).with_seed(9);
    let mi_threaded = mi_base.clone().with_threads(8);
    assert_eq!(mi_top_k(&ds, 1, 4, &mi_base).unwrap(), mi_top_k(&ds, 1, 4, &mi_threaded).unwrap());
    assert_eq!(
        mi_filter(&ds, 1, 0.2, &mi_base).unwrap(),
        mi_filter(&ds, 1, 0.2, &mi_threaded).unwrap()
    );
}

#[test]
fn tiny_epsilon_recovers_exact_topk() {
    // As ε -> 0 the approximate answer converges to the exact one.
    let ds = generate(&corpus::tiny(20_000, 15), 113);
    let exact = exact_entropy_scores(&ds);
    let order = order_desc(&exact);
    let cfg = SwopeConfig::with_epsilon(0.01);
    let res = entropy_top_k(&ds, 3, &cfg).unwrap();
    let mut got = res.attr_indices();
    got.sort_unstable();
    let mut want = order[..3].to_vec();
    want.sort_unstable();
    assert_eq!(got, want);
}

#[test]
fn page_sampling_also_meets_definition5() {
    let ds = generate(&corpus::tiny(50_000, 20), 115);
    let exact = exact_entropy_scores(&ds);
    let order = order_desc(&exact);
    let epsilon = 0.1;
    let mut cfg = SwopeConfig::with_epsilon(epsilon);
    cfg.sampling = swope_core::SamplingStrategy::Page { page_rows: 512, seed: 3 };
    let res = entropy_top_k(&ds, 4, &cfg).unwrap();
    for (i, s) in res.top.iter().enumerate() {
        assert!(exact[s.attr] >= (1.0 - epsilon) * exact[order[i]] - 1e-9);
    }
}
