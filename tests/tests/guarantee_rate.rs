//! Statistical validation of the `1 − p_f` guarantee.
//!
//! Definitions 5–6 are probabilistic: each query may fail with
//! probability at most `p_f`. The per-run tests use conservative seeds;
//! this file attacks the contract statistically — many independent runs
//! at a *large* `p_f`, counting violations, which must stay within a
//! generous binomial envelope of `p_f`. (The union bounds inside the
//! algorithms are loose, so observed failure rates sit far below `p_f`;
//! the envelope would only be crossed by a genuine math bug.)

use swope_baselines::exact_entropy_scores;
use swope_columnar::{Column, Dataset, Field, Schema};
use swope_core::{entropy_filter, entropy_top_k, SwopeConfig};
use swope_sampling::rng::Xoshiro256pp;

/// A small dataset with deliberately close entropy scores, regenerated
/// per seed so runs are independent.
fn adversarial_dataset(seed: u64) -> Dataset {
    let n = 4_000usize;
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let supports = [16u32, 15, 14, 13, 12, 2];
    let fields =
        supports.iter().enumerate().map(|(i, &u)| Field::new(format!("c{i}"), u)).collect();
    let columns = supports
        .iter()
        .map(|&u| {
            let codes: Vec<u32> = (0..n).map(|_| rng.next_below(u as u64) as u32).collect();
            Column::new(codes, u).unwrap()
        })
        .collect();
    Dataset::new(Schema::new(fields), columns).unwrap()
}

#[test]
fn topk_definition5_failure_rate_within_budget() {
    const RUNS: u64 = 120;
    const P_F: f64 = 0.2;
    const EPSILON: f64 = 0.15;
    let mut violations = 0u32;
    for seed in 0..RUNS {
        let ds = adversarial_dataset(seed);
        let exact = exact_entropy_scores(&ds);
        let mut order: Vec<usize> = (0..exact.len()).collect();
        order.sort_by(|&a, &b| exact[b].partial_cmp(&exact[a]).unwrap());

        let cfg = SwopeConfig {
            epsilon: EPSILON,
            failure_probability: Some(P_F),
            ..SwopeConfig::default()
        }
        .with_seed(seed.wrapping_mul(0x9E37_79B9));
        let res = entropy_top_k(&ds, 3, &cfg).unwrap();
        let ok = res.top.iter().enumerate().all(|(i, s)| {
            s.estimate >= (1.0 - EPSILON) * exact[s.attr] - 1e-9
                && exact[s.attr] >= (1.0 - EPSILON) * exact[order[i]] - 1e-9
        });
        if !ok {
            violations += 1;
        }
    }
    // E[violations] <= 24; with 5-sigma slack (σ ≈ 4.4) allow 46.
    assert!(violations <= 46, "{violations}/{RUNS} Definition 5 violations at p_f = {P_F}");
}

#[test]
fn filter_definition6_failure_rate_within_budget() {
    const RUNS: u64 = 120;
    const P_F: f64 = 0.2;
    const EPSILON: f64 = 0.1;
    let eta = 3.5; // sits among the close scores of the adversarial data
    let mut violations = 0u32;
    for seed in 0..RUNS {
        let ds = adversarial_dataset(1_000 + seed);
        let exact = exact_entropy_scores(&ds);
        let cfg = SwopeConfig {
            epsilon: EPSILON,
            failure_probability: Some(P_F),
            ..SwopeConfig::default()
        }
        .with_seed(seed.wrapping_mul(0x2545_F491));
        let res = entropy_filter(&ds, eta, &cfg).unwrap();
        let ok = exact.iter().enumerate().all(|(attr, &score)| {
            if score >= (1.0 + EPSILON) * eta {
                res.contains(attr)
            } else if score < (1.0 - EPSILON) * eta {
                !res.contains(attr)
            } else {
                true
            }
        });
        if !ok {
            violations += 1;
        }
    }
    assert!(violations <= 46, "{violations}/{RUNS} Definition 6 violations at p_f = {P_F}");
}
