//! Robustness: malformed inputs must produce errors, never panics or
//! silent corruption.

use proptest::prelude::*;
use swope_columnar::csv::{read_csv, CsvOptions};
use swope_columnar::{snapshot, DatasetBuilder};

fn sample_bytes() -> Vec<u8> {
    let mut b = DatasetBuilder::new(vec!["a".into(), "b".into()]);
    for i in 0..50 {
        b.push_row(&[format!("v{}", i % 7), format!("w{}", i % 3)]).unwrap();
    }
    snapshot::encode(&b.finish()).to_vec()
}

proptest! {
    /// Decoding arbitrary bytes never panics.
    #[test]
    fn snapshot_decode_arbitrary_bytes_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = snapshot::decode(&bytes);
    }

    /// Truncating a valid snapshot anywhere yields an error (not a panic,
    /// not a silently short dataset).
    #[test]
    fn snapshot_truncation_always_errors(cut_fraction in 0.0f64..1.0) {
        let bytes = sample_bytes();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        prop_assume!(cut < bytes.len());
        prop_assert!(snapshot::decode(&bytes[..cut]).is_err());
    }

    /// Flipping one byte of a valid snapshot either errors or yields a
    /// dataset that still satisfies its own invariants (codes < support) —
    /// it must never panic.
    #[test]
    fn snapshot_single_byte_corruption_is_contained(
        pos_fraction in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let mut bytes = sample_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_fraction) as usize;
        bytes[pos] ^= xor;
        if let Ok(ds) = snapshot::decode(&bytes) {
            for attr in 0..ds.num_attrs() {
                let col = ds.column(attr);
                let support = col.support();
                prop_assert!(col.codes().iter().all(|&c| c < support));
            }
        }
    }

    /// Parsing arbitrary text as CSV never panics.
    #[test]
    fn csv_arbitrary_text_never_panics(text in "\\PC{0,300}") {
        let _ = read_csv(text.as_bytes(), &CsvOptions::default());
    }

    /// Parsing arbitrary *bytes* (possibly invalid UTF-8) as CSV never
    /// panics.
    #[test]
    fn csv_arbitrary_bytes_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let _ = read_csv(bytes.as_slice(), &CsvOptions::default());
    }

    /// Well-formed CSV with any cell content round-trips through
    /// write_csv -> read_csv.
    #[test]
    fn csv_round_trip_arbitrary_cells(
        cells in proptest::collection::vec(
            proptest::collection::vec("[ -~]{0,12}", 2..=2),
            1..30,
        ),
    ) {
        let mut b = DatasetBuilder::new(vec!["x".into(), "y".into()]);
        for row in &cells {
            b.push_row(row).unwrap();
        }
        let ds = b.finish();
        let mut out = Vec::new();
        swope_columnar::csv::write_csv(&ds, &mut out).unwrap();
        let back = read_csv(out.as_slice(), &CsvOptions::default()).unwrap();
        prop_assert_eq!(back.num_rows(), ds.num_rows());
        for attr in 0..2 {
            prop_assert_eq!(back.column(attr).codes(), ds.column(attr).codes());
        }
    }
}

#[test]
fn snapshot_header_field_corruption_cases() {
    let bytes = sample_bytes();
    // Corrupt the attribute count to a huge value: must error on
    // truncation, not attempt a giant allocation then die.
    let mut huge_h = bytes.clone();
    huge_h[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(snapshot::decode(&huge_h).is_err());
    // Corrupt the row count similarly.
    let mut huge_n = bytes.clone();
    huge_n[12..20].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
    assert!(snapshot::decode(&huge_n).is_err());
}
