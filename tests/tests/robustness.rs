//! Robustness: malformed inputs must produce errors, never panics or
//! silent corruption. Fixed-seed randomized loops over the workspace RNG.

use swope_columnar::csv::{read_csv, write_csv, CsvOptions};
use swope_columnar::{snapshot, DatasetBuilder};
use swope_sampling::rng::Xoshiro256pp;

const CASES: usize = 200;

fn rng(label: u64) -> Xoshiro256pp {
    Xoshiro256pp::seed_from_u64(0xB0B ^ label)
}

fn sample_bytes() -> Vec<u8> {
    let mut b = DatasetBuilder::new(vec!["a".into(), "b".into()]);
    for i in 0..50 {
        b.push_row(&[format!("v{}", i % 7), format!("w{}", i % 3)]).unwrap();
    }
    snapshot::encode(&b.finish()).to_vec()
}

/// Decoding arbitrary bytes never panics.
#[test]
fn snapshot_decode_arbitrary_bytes_never_panics() {
    let mut r = rng(1);
    for _ in 0..CASES {
        let len = r.next_below(512) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| r.next_below(256) as u8).collect();
        let _ = snapshot::decode(&bytes);
    }
}

/// Truncating a valid snapshot anywhere yields an error (not a panic, not
/// a silently short dataset).
#[test]
fn snapshot_truncation_always_errors() {
    let bytes = sample_bytes();
    for cut in 0..bytes.len() {
        assert!(snapshot::decode(&bytes[..cut]).is_err(), "cut at {cut}");
    }
}

/// Flipping one byte of a valid snapshot either errors or yields a
/// dataset that still satisfies its own invariants (codes < support) — it
/// must never panic.
#[test]
fn snapshot_single_byte_corruption_is_contained() {
    let mut r = rng(2);
    let bytes = sample_bytes();
    for case in 0..CASES {
        let mut corrupted = bytes.clone();
        let pos = r.next_below(bytes.len() as u64) as usize;
        let xor = 1 + r.next_below(255) as u8;
        corrupted[pos] ^= xor;
        if let Ok(ds) = snapshot::decode(&corrupted) {
            for attr in 0..ds.num_attrs() {
                let col = ds.column(attr);
                let support = col.support();
                assert!(
                    col.to_codes().iter().all(|&c| c < support),
                    "case {case}: code out of support after corrupting byte {pos}"
                );
            }
        }
    }
}

/// Parsing arbitrary bytes (printable text, control characters, or
/// invalid UTF-8) as CSV never panics.
#[test]
fn csv_arbitrary_bytes_never_panics() {
    let mut r = rng(3);
    for _ in 0..CASES {
        let len = r.next_below(300) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| r.next_below(256) as u8).collect();
        let _ = read_csv(bytes.as_slice(), &CsvOptions::default());
    }
    // Structured-looking text too: quotes, commas, and newlines in
    // adversarial positions.
    for _ in 0..CASES {
        let len = r.next_below(120) as usize;
        let alphabet: &[u8] = b"a,\"\n\r;x 0\t";
        let bytes: Vec<u8> =
            (0..len).map(|_| alphabet[r.next_below(alphabet.len() as u64) as usize]).collect();
        let _ = read_csv(bytes.as_slice(), &CsvOptions::default());
    }
}

/// Well-formed CSV with any printable cell content round-trips through
/// write_csv -> read_csv.
#[test]
fn csv_round_trip_arbitrary_cells() {
    let mut r = rng(4);
    for case in 0..CASES {
        let rows = 1 + r.next_below(29) as usize;
        let cells: Vec<Vec<String>> = (0..rows)
            .map(|_| {
                (0..2)
                    .map(|_| {
                        let len = r.next_below(13) as usize;
                        (0..len)
                            .map(|_| (b' ' + r.next_below(95) as u8) as char)
                            .collect::<String>()
                    })
                    .collect()
            })
            .collect();
        let mut b = DatasetBuilder::new(vec!["x".into(), "y".into()]);
        for row in &cells {
            b.push_row(row).unwrap();
        }
        let ds = b.finish();
        let mut out = Vec::new();
        write_csv(&ds, &mut out).unwrap();
        let back = read_csv(out.as_slice(), &CsvOptions::default()).unwrap();
        assert_eq!(back.num_rows(), ds.num_rows(), "case {case}");
        for attr in 0..2 {
            assert_eq!(back.column(attr).to_codes(), ds.column(attr).to_codes(), "case {case}");
        }
    }
}

#[test]
fn snapshot_header_field_corruption_cases() {
    let bytes = sample_bytes();
    // Corrupt the attribute count to a huge value: must error on
    // truncation, not attempt a giant allocation then die.
    let mut huge_h = bytes.clone();
    huge_h[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(snapshot::decode(&huge_h).is_err());
    // Corrupt the row count similarly.
    let mut huge_n = bytes.clone();
    huge_n[12..20].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
    assert!(snapshot::decode(&huge_n).is_err());
}
