//! Invariants of the per-iteration query traces.

use swope_core::{entropy_filter, entropy_top_k, mi_top_k, SwopeConfig};
use swope_datagen::{corpus, generate};

#[test]
fn trace_matches_iteration_count_and_doubles() {
    let ds = generate(&corpus::tiny(60_000, 20), 301);
    let res = entropy_top_k(&ds, 3, &SwopeConfig::with_epsilon(0.1)).unwrap();
    let trace = &res.stats.trace;
    assert_eq!(trace.len(), res.stats.iterations);
    assert_eq!(trace.last().unwrap().sample_size, res.stats.sample_size);
    for (i, t) in trace.iter().enumerate() {
        assert_eq!(t.iteration, i + 1);
    }
    // Sample sizes follow the doubling ladder (non-strict at the N cap).
    for w in trace.windows(2) {
        assert!(w[1].sample_size >= w[0].sample_size);
        assert!(w[1].sample_size <= 2 * w[0].sample_size);
    }
}

#[test]
fn lambda_decreases_along_the_trace() {
    let ds = generate(&corpus::tiny(80_000, 15), 303);
    let res = entropy_top_k(&ds, 2, &SwopeConfig::with_epsilon(0.05)).unwrap();
    for w in res.stats.trace.windows(2) {
        assert!(
            w[1].lambda <= w[0].lambda + 1e-12,
            "λ must shrink as M grows: {:?}",
            res.stats.trace
        );
    }
}

#[test]
fn candidates_never_increase_for_filters() {
    let ds = generate(&corpus::tiny(60_000, 25), 305);
    let res = entropy_filter(&ds, 2.0, &SwopeConfig::with_epsilon(0.05)).unwrap();
    for w in res.stats.trace.windows(2) {
        assert!(
            w[1].candidates <= w[0].candidates,
            "filter candidates must shrink: {:?}",
            res.stats.trace
        );
    }
    // First iteration sees all attributes.
    assert_eq!(res.stats.trace[0].candidates, ds.num_attrs());
}

#[test]
fn mi_trace_starts_with_all_candidates() {
    let ds = generate(&corpus::tiny(40_000, 12), 307);
    let res = mi_top_k(&ds, 0, 3, &SwopeConfig::with_epsilon(0.5)).unwrap();
    assert_eq!(res.stats.trace[0].candidates, ds.num_attrs() - 1);
    assert!(!res.stats.trace.is_empty());
}

#[test]
fn trace_length_bounded_by_i_max() {
    // i_max = ceil(log2(N/M0)) + 1 bounds the iteration count.
    let ds = generate(&corpus::tiny(100_000, 10), 309);
    let cfg = SwopeConfig::with_epsilon(0.01); // tight: many iterations
    let res = entropy_top_k(&ds, 2, &cfg).unwrap();
    let p_f = cfg.resolve_p_f(&ds);
    let m0 = cfg.resolve_m0(&ds, p_f);
    let i_max = swope_sampling::DoublingSchedule::new(ds.num_rows(), m0).i_max();
    assert!(
        res.stats.trace.len() <= i_max,
        "{} iterations > i_max {}",
        res.stats.trace.len(),
        i_max
    );
}
